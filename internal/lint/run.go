package lint

import (
	"sort"
)

// Run applies every analyzer to every package and returns the surviving
// diagnostics sorted by position. Suppression via //lint:ignore is applied
// here — centrally, so all analyzers honor it identically — and malformed
// directives are converted into diagnostics of their own (see
// DirectiveCheck).
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ds, err := runPackage(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		diags = append(diags, ds...)
	}
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// runPackage runs the analyzers on one package and applies its
// suppression directives.
func runPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.Info,
		}
		pass.Report = func(d Diagnostic) {
			d.Analyzer = a.Name
			d.Position = pkg.Fset.Position(d.Pos)
			raw = append(raw, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, err
		}
	}

	// Directives: filename -> line -> directive.
	perFile := map[string]map[int]*directive{}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		dirs := parseDirectives(pkg.Fset, f)
		perFile[pkg.Fset.Position(f.Pos()).Filename] = dirs
		// Validate every directive, well-placed or not.
		lines := make([]int, 0, len(dirs))
		for line := range dirs {
			lines = append(lines, line)
		}
		sort.Ints(lines)
		for _, line := range lines {
			d := dirs[line]
			if msg := checkDirective(d); msg != "" {
				diags = append(diags, Diagnostic{
					Analyzer: DirectiveCheck,
					Pos:      d.pos,
					Position: pkg.Fset.Position(d.pos),
					Message:  msg,
				})
			}
		}
	}

	for _, d := range raw {
		if suppressed(perFile[d.Position.Filename], d) {
			continue
		}
		diags = append(diags, d)
	}
	return diags, nil
}

// suppressed reports whether a well-formed directive on the diagnostic's
// line (trailing comment) or the line above (standalone comment) waives
// it. Malformed directives never suppress anything.
func suppressed(dirs map[int]*directive, d Diagnostic) bool {
	if dirs == nil {
		return false
	}
	for _, line := range [2]int{d.Position.Line, d.Position.Line - 1} {
		if dir, ok := dirs[line]; ok && checkDirective(dir) == "" && dir.covers(d.Analyzer) {
			return true
		}
	}
	return false
}
