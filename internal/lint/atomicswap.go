package lint

import (
	"go/ast"
	"go/types"
)

// AtomicSwapAnalyzer freezes the copy-on-write publication discipline of
// the serving stack (DESIGN.md §10, §13). Two invariants:
//
//   - Registry-style atomic.Pointer fields are the single publication
//     point readers load without locks; a Store from anywhere but the
//     owning type's blessed install/swap methods (or its constructor)
//     can publish a snapshot that skipped versioning, persistence, or
//     the writer mutex.
//   - Breaker state is a counter-driven machine: every transition goes
//     through the type's transitionLocked method so counters reset and
//     the journal records the edge, and no transition may consult the
//     wall clock (the breaker must replay deterministically).
var AtomicSwapAnalyzer = &Analyzer{
	Name: "atomicswap",
	Doc: `restrict atomic.Pointer publication and breaker transitions

In internal/serve, a Store/Swap/CompareAndSwap on an atomic.Pointer field
is allowed only inside a method of the field's owning type or where the
owner was just constructed locally; state-machine types (a struct with a
'state' field and a transitionLocked method) may assign state only inside
transitionLocked, and their methods may not call time.Now/After/NewTimer-
style clock functions — transitions must be driven by counters.`,
	Run: runAtomicSwap,
}

// atomicScope lists the guarded packages by final import-path element.
var atomicScope = map[string]bool{
	"serve": true,
}

// atomicMutators are the atomic.Pointer methods that publish a new value.
var atomicMutators = map[string]bool{
	"Store":          true,
	"Swap":           true,
	"CompareAndSwap": true,
}

// breakerClockFuncs are the time-package calls that would make a state
// machine's behavior depend on when it ran rather than what it counted.
var breakerClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"AfterFunc": true, "NewTimer": true, "NewTicker": true,
	"Tick": true, "Sleep": true,
}

func runAtomicSwap(pass *Pass) error {
	if pass.Pkg == nil || !atomicScope[pathBase(pass.Pkg.Path())] {
		return nil
	}
	machines := stateMachineTypes(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkAtomicFunc(pass, machines, fd)
		}
	}
	return nil
}

// stateMachineTypes finds the package's counter-driven state machines:
// named struct types with a 'state' field and a transitionLocked method.
func stateMachineTypes(pass *Pass) map[string]bool {
	hasState := map[string]bool{}
	hasTransition := map[string]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						for _, name := range field.Names {
							if name.Name == "state" {
								hasState[ts.Name.Name] = true
							}
						}
					}
				}
			case *ast.FuncDecl:
				if d.Name.Name == "transitionLocked" {
					if recv := recvTypeName(d); recv != "" {
						hasTransition[recv] = true
					}
				}
			}
		}
	}
	out := map[string]bool{}
	for name := range hasState {
		if hasTransition[name] {
			out[name] = true
		}
	}
	return out
}

// recvTypeName returns the base type name of a method receiver ("" for
// plain functions).
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if s, ok := t.(*ast.StarExpr); ok {
		t = s.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// checkAtomicFunc applies both disciplines to one function body.
func checkAtomicFunc(pass *Pass, machines map[string]bool, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	recv := recvTypeName(fd)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			checkPointerMutation(pass, fd, v)
			if recv != "" && machines[recv] {
				if path, name, ok := pkgCall(info, v); ok && path == "time" && breakerClockFuncs[name] {
					pass.Reportf(v.Pos(), "time.%s in a method of state machine %s; transitions must be counter-driven so the breaker replays deterministically", name, recv)
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				checkStateStore(pass, machines, fd, lhs)
			}
		case *ast.IncDecStmt:
			checkStateStore(pass, machines, fd, v.X)
		}
		return true
	})
}

// checkPointerMutation flags Store/Swap/CompareAndSwap on an
// atomic.Pointer that the enclosing function does not own.
func checkPointerMutation(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	info := pass.TypesInfo
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !atomicMutators[sel.Sel.Name] {
		return
	}
	if !isAtomicPointer(info.Types[sel.X].Type) {
		return
	}
	owner := ""
	if inner, ok := sel.X.(*ast.SelectorExpr); ok {
		if named := namedOf(info.Types[inner.X].Type); named != nil {
			owner = named.Obj().Name()
		}
	}
	switch {
	case owner != "" && recvTypeName(fd) == owner:
		// A blessed method of the owning type (Install and friends).
	case locallyConstructed(info, fd, sel.X):
		// Constructor pattern: the owner was declared in this function and
		// is not yet visible to any reader.
	default:
		pass.Reportf(call.Pos(), "atomic.Pointer %s outside the owning type's methods; publish through its blessed Install/swap method so versioning and persistence cannot be skipped", sel.Sel.Name)
	}
}

// checkStateStore flags writes to the 'state' field of a state-machine
// type outside its transitionLocked method.
func checkStateStore(pass *Pass, machines map[string]bool, fd *ast.FuncDecl, lhs ast.Expr) {
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "state" {
		return
	}
	named := namedOf(pass.TypesInfo.Types[sel.X].Type)
	if named == nil || !machines[named.Obj().Name()] {
		return
	}
	if recvTypeName(fd) == named.Obj().Name() && fd.Name.Name == "transitionLocked" {
		return
	}
	pass.Reportf(sel.Pos(), "direct write to %s.state outside transitionLocked; state changes must go through the transition method so counters reset and the edge is journaled", named.Obj().Name())
}

// isAtomicPointer reports whether t is sync/atomic.Pointer[...].
func isAtomicPointer(t types.Type) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && obj.Name() == "Pointer"
}

// namedOf unwraps pointers and aliases down to a named type, nil if the
// type is not named.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	named, _ := t.(*types.Named)
	return named
}

// locallyConstructed reports whether the mutated value's root identifier
// was declared inside this function — the not-yet-published constructor
// case (r := &Registry{}; r.cur.Store(...)).
func locallyConstructed(info *types.Info, fd *ast.FuncDecl, x ast.Expr) bool {
	root := rootIdent(x)
	if root == nil {
		return false
	}
	obj := info.Uses[root]
	if obj == nil {
		obj = info.Defs[root]
	}
	return obj != nil && declaredWithin(obj, fd.Body)
}
