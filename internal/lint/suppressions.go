package lint

import (
	"fmt"
	"sort"
	"strings"
)

// A Suppression is one explained waiver in the tree: a //lint:ignore
// directive or a //mithra:coldpath allocation allowance. The audit listing
// (`mithralint -suppressions`) exists so the set of places where the
// invariants are waived is reviewable in one screen instead of scattered
// across the tree — a suppression that nobody can enumerate is a
// suppression that never gets revisited.
type Suppression struct {
	File     string
	Line     int
	Kind     string // "lint:ignore" or "mithra:coldpath"
	Analyzer string // analyzer list for lint:ignore, "hotpathalloc,escapes" for coldpath
	Reason   string
}

func (s Suppression) String() string {
	return fmt.Sprintf("%s:%d: %s %s: %s", s.File, s.Line, s.Kind, s.Analyzer, s.Reason)
}

// Suppressions enumerates every waiver in the loaded packages, sorted by
// file and line. Malformed directives are excluded — they are diagnostics,
// not waivers.
func Suppressions(pkgs []*Package) []Suppression {
	var out []Suppression
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			filename := pkg.Fset.Position(f.Pos()).Filename
			dirs := parseDirectives(pkg.Fset, f)
			lines := make([]int, 0, len(dirs))
			for line := range dirs {
				lines = append(lines, line)
			}
			sort.Ints(lines)
			for _, line := range lines {
				d := dirs[line]
				if checkDirective(d) != "" {
					continue
				}
				out = append(out, Suppression{
					File:     filename,
					Line:     line,
					Kind:     "lint:ignore",
					Analyzer: d.analyzers,
					Reason:   d.reason,
				})
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, coldpathDirective+" ")
					if !ok {
						continue
					}
					reason := strings.TrimSpace(rest)
					if reason == "" {
						continue
					}
					out = append(out, Suppression{
						File:     filename,
						Line:     pkg.Fset.Position(c.Pos()).Line,
						Kind:     "mithra:coldpath",
						Analyzer: "hotpathalloc,escapes",
						Reason:   reason,
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}
