package lint

// Vet-tool mode: `go vet -vettool=bin/mithralint ./...` drives the binary
// through the unit-checker protocol. For every package the go command
// writes a JSON config file (GoFiles, the import map, and the export-data
// file of each dependency, already compiled) and invokes the tool with
// that file as its sole argument. This file implements the protocol on
// the standard library: export data is read through go/importer's gc
// lookup mode, so no source re-type-checking happens — vet mode is
// incremental and build-cached like the rest of the go toolchain.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// vetConfig mirrors the fields of the go command's vet config file that
// this tool consumes (the file carries more; unknown fields are ignored).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// UnitCheck runs the analyzer suite on one vet unit described by cfgFile
// and returns the process exit code: 0 clean, 2 findings, 1 protocol or
// I/O failure. Diagnostics go to w in file:line:col form (the format the
// go command relays).
func UnitCheck(w io.Writer, cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(w, "mithralint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(w, "mithralint: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// The go command requires the facts file to exist afterwards, even
	// though this suite records no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(w, "mithralint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var all, nonTest []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(w, "mithralint: %v\n", err)
			return 1
		}
		all = append(all, f)
		if !strings.HasSuffix(name, "_test.go") {
			nonTest = append(nonTest, f)
		}
	}

	// Dependencies resolve through the export data the go command already
	// compiled, keyed by the unit's import map.
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	pkg := &Package{Path: cfg.ImportPath, Dir: cfg.Dir, Fset: fset, Files: nonTest, Info: newInfo()}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Type-check every file of the unit (a package missing half its
	// declarations mis-types the rest), but analyze only non-test files.
	pkg.Pkg, _ = conf.Check(cfg.ImportPath, fset, all, pkg.Info)
	if len(pkg.TypeErrors) > 0 && cfg.SucceedOnTypecheckFailure {
		return 0
	}

	diags, err := runPackage(pkg, Analyzers())
	if err != nil {
		fmt.Fprintf(w, "mithralint: %v\n", err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(w, "%s: %s (%s)\n", relPosition(d.Position), d.Message, d.Analyzer)
	}
	return 2
}

// relPosition shortens an absolute diagnostic path relative to the
// working directory when possible, matching go vet's own output style.
func relPosition(pos token.Position) string {
	wd, err := os.Getwd()
	if err != nil {
		return pos.String()
	}
	if rel, err := filepath.Rel(wd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		pos.Filename = rel
	}
	return pos.String()
}
