package lint

import (
	"go/ast"
	"go/types"
)

// HotpathAllocAnalyzer enforces the zero-allocation decide path (DESIGN.md
// §12–§13) at the AST level. Functions annotated //mithra:hotpath are the
// steady-state round-trip chain — framing, request parsing, registry
// lookup, MISR hashing, batch classification — whose process-wide
// allocation budget is zero; `serve.RoundTripAllocs = 0` asserts that
// dynamically, this analyzer rejects the allocating constructs before a
// benchmark ever runs, and the escape gate (escape.go) closes the gap the
// AST cannot see by parsing the compiler's own escape diagnostics.
var HotpathAllocAnalyzer = &Analyzer{
	Name: "hotpathalloc",
	Doc: `forbid allocating constructs in //mithra:hotpath functions

Inside a function annotated //mithra:hotpath, flags make/new, composite
literals, func literals (closure headers escape), fmt.* calls,
string<->[]byte conversions, and arguments boxed into a ...any variadic —
unless the line carries a //mithra:coldpath <reason> waiver. Malformed or
misplaced //mithra: annotations are themselves diagnostics. The companion
escape gate (mithralint -escapes) checks the same annotated regions
against go build -gcflags=-m heap-escape diagnostics.`,
	Run: runHotpathAlloc,
}

func runHotpathAlloc(pass *Pass) error {
	ix := &HotpathIndex{}
	for _, f := range pass.Files {
		collectHotpaths(pass.Fset, f, ix, pass.Reportf)
	}
	if len(ix.Funcs) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			pos := pass.Fset.Position(fd.Pos())
			hf, hot := ix.InHotpath(pos.Filename, pos.Line)
			if !hot {
				continue
			}
			checkHotpathBody(pass, ix, hf, fd.Body)
		}
	}
	return nil
}

// checkHotpathBody walks one annotated function body and reports every
// allocating construct not covered by a coldpath waiver.
func checkHotpathBody(pass *Pass, ix *HotpathIndex, hf HotpathFunc, body *ast.BlockStmt) {
	cold := func(n ast.Node) bool {
		p := pass.Fset.Position(n.Pos())
		return ix.Cold(p.Filename, p.Line)
	}
	report := func(n ast.Node, what string) {
		if cold(n) {
			return
		}
		pass.Reportf(n.Pos(), "%s in hotpath function %s allocates; restructure it or mark the statement //mithra:coldpath <reason>", what, hf.Name)
	}
	// m[string(b)] is the compiler-recognized non-allocating lookup idiom
	// (the temporary string never outlives the index expression); exempt
	// conversions in that position before the walk reaches them.
	mapIndexConv := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		idx, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		xtv, found := pass.TypesInfo.Types[idx.X]
		if !found || xtv.Type == nil {
			return true
		}
		if _, isMap := xtv.Type.Underlying().(*types.Map); isMap {
			if call, ok := idx.Index.(*ast.CallExpr); ok {
				if tv, found := pass.TypesInfo.Types[call.Fun]; found && tv.IsType() {
					mapIndexConv[call] = true
				}
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			// A closure is a single allocation at creation; its body is not
			// part of the steady-state path, so don't descend.
			report(v, "func literal")
			return false
		case *ast.CompositeLit:
			report(v, "composite literal")
			return false
		case *ast.CallExpr:
			if !mapIndexConv[v] {
				checkHotpathCall(pass, report, v)
			}
		}
		return true
	})
}

// checkHotpathCall classifies one call expression inside a hotpath body.
func checkHotpathCall(pass *Pass, report func(ast.Node, string), call *ast.CallExpr) {
	info := pass.TypesInfo

	// Builtins make/new always allocate on the hot path (append is left to
	// the escape gate: appending within capacity is free, and only the
	// compiler knows).
	if id, ok := call.Fun.(*ast.Ident); ok {
		if obj, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch obj.Name() {
			case "make", "new":
				report(call, obj.Name())
			}
			return
		}
	}

	// Conversions between string and byte/rune slices copy.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type
		from := info.Types[call.Args[0]].Type
		if allocConversion(to, from) {
			report(call, "string conversion")
			return
		}
	}

	// fmt is wholesale off the hot path: every entry point boxes its
	// arguments and most build intermediate strings.
	if path, name, ok := pkgCall(info, call); ok && path == "fmt" {
		report(call, "fmt."+name+" call")
		return
	}

	// Passing a concrete value to a ...any variadic boxes it into an
	// interface — the classic hidden allocation behind error formatting
	// helpers.
	if sig := calleeSignature(info, call); sig != nil && sig.Variadic() && !call.Ellipsis.IsValid() {
		last := sig.Params().At(sig.Params().Len() - 1)
		if slice, ok := last.Type().(*types.Slice); ok && types.IsInterface(slice.Elem()) {
			if len(call.Args) >= sig.Params().Len() {
				report(call, "argument boxed into "+types.TypeString(slice.Elem(), nil)+" variadic")
			}
		}
	}
}

// allocConversion reports whether a conversion from from to to copies its
// operand (string <-> []byte / []rune).
func allocConversion(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	isString := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteOrRuneSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
			b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isString(to) && isByteOrRuneSlice(from)) || (isByteOrRuneSlice(to) && isString(from))
}

// calleeSignature resolves the signature of a call's callee, nil for
// builtins and type conversions.
func calleeSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}
