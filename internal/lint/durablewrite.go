package lint

import (
	"go/ast"
)

// DurableWriteAnalyzer freezes the WAL durability discipline (DESIGN.md
// §11, §13): crash-safety in internal/serve and internal/fault rests on
// every persisted record being either write-ahead with atomic rename
// (temp file → write → fsync → rename → directory sync) or an O_APPEND
// log whose torn tail recovery can discard. A bare os.WriteFile looks
// correct in every test and loses the record on the first power cut.
var DurableWriteAnalyzer = &Analyzer{
	Name: "durablewrite",
	Doc: `enforce the tmp -> fsync -> rename -> dir-sync write discipline

In internal/{serve,fault}, flags os.WriteFile and os.Create outright
(neither can be made power-loss atomic in place), os.OpenFile without
O_APPEND in its flags (append logs are the only blessed non-rename
writes), os.CreateTemp in a function that never calls Sync or os.Rename
(a temp file that is not fsynced before its rename can surface empty),
and os.Rename in a function that never syncs the containing directory
(the rename itself must survive power loss).`,
	Run: runDurableWrite,
}

// durableScope lists the packages under guard by final import-path
// element: the WAL home (serve) and the fault-injection layer whose
// artifacts feed crash-recovery tests. Other packages write golden files
// and reports where durability is irrelevant.
var durableScope = map[string]bool{
	"serve": true,
	"fault": true,
	// cluster appends the decision logs and replays the WAL fold log; its
	// durability discipline (O_APPEND single-write blocks, checksummed
	// valid-prefix recovery) is the same contract as serve's.
	"cluster": true,
}

func runDurableWrite(pass *Pass) error {
	if pass.Pkg == nil || !durableScope[pathBase(pass.Pkg.Path())] {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDurableFunc(pass, fd)
		}
	}
	return nil
}

// checkDurableFunc applies the write-discipline rules to one function.
// The unit of accounting is the function: CreateTemp, Sync, and Rename
// must appear together (wal.StoreSnapshot is the blessed shape), because
// a sequence split across helpers cannot be paired up syntactically and
// deserves an explicit //lint:ignore with its justification.
func checkDurableFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	var createTemps, renames []*ast.CallExpr
	hasSync := false
	hasDirSync := false

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if path, name, ok := pkgCall(info, call); ok && path == "os" {
			switch name {
			case "WriteFile":
				pass.Reportf(call.Pos(), "os.WriteFile is not power-loss atomic; write a temp file, Sync it, then os.Rename (wal.StoreSnapshot is the blessed shape)")
			case "Create":
				pass.Reportf(call.Pos(), "os.Create truncates in place; crash-safe writes go through os.CreateTemp + Sync + os.Rename, or an O_APPEND log")
			case "OpenFile":
				if !flagsContainAppend(call) {
					pass.Reportf(call.Pos(), "os.OpenFile without os.O_APPEND can tear previously durable bytes; only append logs and the temp+rename sequence are blessed")
				}
			case "CreateTemp":
				createTemps = append(createTemps, call)
			case "Rename":
				renames = append(renames, call)
			}
			return true
		}
		// Any .Sync() method call counts as the fsync step; syncDir(...) is
		// the blessed directory-sync helper (matched by name so fixtures
		// can define their own stub).
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if fun.Sel.Name == "Sync" {
				hasSync = true
			}
		case *ast.Ident:
			if fun.Name == "syncDir" {
				hasDirSync = true
			}
		}
		return true
	})

	for _, call := range createTemps {
		if !hasSync {
			pass.Reportf(call.Pos(), "os.CreateTemp here but no Sync call in %s; an unfsynced temp file can be renamed into place empty", fd.Name.Name)
		} else if len(renames) == 0 {
			pass.Reportf(call.Pos(), "os.CreateTemp here but no os.Rename in %s; a temp file that is never atomically installed is not a durable write", fd.Name.Name)
		}
	}
	for _, call := range renames {
		if !hasDirSync {
			pass.Reportf(call.Pos(), "os.Rename here but no syncDir call in %s; the rename itself is not durable until the directory is fsynced", fd.Name.Name)
		}
	}
}

// flagsContainAppend reports whether an os.OpenFile call's flag argument
// mentions O_APPEND anywhere in its expression.
func flagsContainAppend(call *ast.CallExpr) bool {
	if len(call.Args) < 2 {
		return false
	}
	found := false
	ast.Inspect(call.Args[1], func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "O_APPEND" {
			found = true
		}
		if id, ok := n.(*ast.Ident); ok && id.Name == "O_APPEND" {
			found = true
		}
		return !found
	})
	return found
}
