// Fixture for the floatreduce analyzer.
package floatreduce

import "parallel"

type accum struct {
	sum float64
	n   int
}

// Positives: float accumulation whose order depends on scheduling.

func capturedSum(xs []float64) (float64, error) {
	total := 0.0
	err := parallel.ForEach(4, len(xs), func(i int) error {
		total += xs[i] // want "float accumulation into captured total inside a parallel closure"
		return nil
	})
	return total, err
}

func capturedProduct(xs []float64) (float64, error) {
	prod := 1.0
	err := parallel.ForEach(4, len(xs), func(i int) error {
		prod *= xs[i] // want "float accumulation into captured prod inside a parallel closure"
		return nil
	})
	return prod, err
}

func workerStateSum(xs []float64) error {
	return parallel.ForEachWorker(4, len(xs),
		func() *accum { return &accum{} },
		func(state *accum, i int) error {
			state.sum += xs[i] // want "float accumulation into per-worker state state depends on the dynamic task-to-worker assignment"
			state.n++
			return nil
		})
}

// Negatives: per-task locals, order-indexed slots, and integer counters
// (integer addition is associative; parallelcapture governs those
// separately).

func localAccum(xss [][]float64) ([]float64, error) {
	return parallel.Map(4, len(xss), func(i int) (float64, error) {
		acc := 0.0
		for _, v := range xss[i] {
			acc += v
		}
		return acc, nil
	})
}

func slotAccum(xss [][]float64) ([]float64, error) {
	sums := make([]float64, len(xss))
	err := parallel.ForEach(4, len(xss), func(i int) error {
		for _, v := range xss[i] {
			sums[i] += v
		}
		return nil
	})
	return sums, err
}

func intCounter(xs []int) (int, error) {
	count := 0
	err := parallel.ForEach(4, len(xs), func(i int) error {
		count += xs[i] // integer: not a floatreduce finding
		return nil
	})
	return count, err
}
