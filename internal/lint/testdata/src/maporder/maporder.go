// Fixture for the maporder analyzer. Diagnostics anchor on the range
// statement, so the wants sit on the 'for' lines.
package maporder

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"parallel"
)

// Positives: map order reaching ordered output, slice order, or the
// parallel engine.

func renderUnsorted(w io.Writer, m map[string]float64) {
	for k, v := range m { // want "map iteration writes output in Go's randomized map order"
		fmt.Fprintf(w, "%s=%g\n", k, v)
	}
}

func buildUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want "append inside map iteration builds keys in Go's randomized map order"
		keys = append(keys, k)
	}
	return keys
}

func fanOutUnsorted(m map[string]int) error {
	for k := range m { // want "parallel fan-out launched from inside map iteration"
		_ = k
		err := parallel.ForEach(2, 3, func(i int) error { return nil })
		if err != nil {
			return err
		}
	}
	return nil
}

func stringBuild(m map[string]int) string {
	var sb strings.Builder
	for k := range m { // want "map iteration writes output in Go's randomized map order"
		sb.WriteString(k)
	}
	return sb.String()
}

// Negatives: collect-then-sort, keyed writes, and order-insensitive
// bodies.

func renderSorted(w io.Writer, m map[string]float64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%g\n", k, m[k])
	}
}

func keyedCopy(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v + 1
	}
	return out
}

func countValues(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func sliceSortedLater(m map[int]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// Ranging a slice is always fine, whatever the body does.
func sliceRange(w io.Writer, xs []string) {
	for _, x := range xs {
		fmt.Fprintln(w, x)
	}
}
