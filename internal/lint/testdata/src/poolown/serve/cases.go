package serve

// --- positives --------------------------------------------------------

// A path that neither releases nor transfers: the acceptance case for a
// deleted Put (remove putReq from a worker and this is what remains).
func leakAlways() {
	buf := getBuf(64) // want "buffer from getBuf is not released"
	_ = buf
}

// Released on the happy path only; the error return leaks.
func leakOnError(fail bool) error {
	req := getReq() // want "request from getReq is not released"
	if fail {
		return errFail
	}
	putReq(req)
	return nil
}

// A loop iteration that can reach continue with the object still owned.
func leakOnContinue(n int) {
	for i := 0; i < n; i++ {
		req := getReq() // want "request from getReq is not released"
		if i%2 == 0 {
			continue
		}
		putReq(req)
	}
}

// Reading through the object after its release.
func useAfterPut() byte {
	buf := getBuf(8)
	buf = append(buf, 1)
	putBuf(buf)
	return buf[0] // want "use of pooled buffer from getBuf after it was returned to the pool"
}

// An alias created by a same-typed call result is tracked through the
// release too.
func useAfterPutAlias() (byte, error) {
	buf := getBuf(8)
	out, err := frame(buf)
	putBuf(buf)
	if err != nil {
		return 0, err
	}
	return out[0], nil // want "use of pooled buffer from getBuf after it was returned to the pool"
}

// Releasing twice on one path.
func doublePut() {
	req := getReq()
	putReq(req)
	putReq(req) // want "returned to the pool twice"
}

// Objects that never came from the pool.
func foreignPut() {
	req := &DecideRequest{}
	putReq(req) // want "never came from the pool"
}

func foreignPutMake() {
	putBuf(make([]byte, 0, 64)) // want "never came from the pool"
}

// An acquisition whose result is dropped leaks immediately.
func discarded() {
	getReq() // want "result of getReq is discarded"
}

// An owned parameter must leave the function on every path too.
//
//mithra:owns req
func consumeLeaky(req *DecideRequest, fail bool) { // want "owned parameter req is not released"
	if fail {
		return
	}
	putReq(req)
}

// --- negatives --------------------------------------------------------

// Released on every path, including the error return.
func allPaths(fail bool) error {
	req := getReq()
	if fail {
		putReq(req)
		return errFail
	}
	putReq(req)
	return nil
}

// Returning the object transfers ownership to the caller.
func transferReturn() *DecideRequest {
	req := getReq()
	req.ID = 1
	return req
}

// Sending on a channel transfers ownership to the receiver (the
// reader -> shard queue -> worker protocol).
func transferSend(q chan *DecideRequest) {
	req := getReq()
	select {
	case q <- req:
	default:
		putReq(req)
	}
}

// A deferred release covers every remaining path, including panics.
func deferRelease() {
	buf := getBuf(16)
	defer putBuf(buf)
	mayPanic()
}

// Passing to an //mithra:owns callee transfers ownership.
//
//mithra:owns req
func consume(req *DecideRequest) {
	req.ID = 0
	putReq(req)
}

func transferOwns() {
	req := getReq()
	consume(req)
}

// Release through a composite-literal alias: the task wrapper carries the
// request, so putting the wrapper's field is putting the request.
type task struct {
	req *DecideRequest
}

func wrapAndSend(q chan task) {
	req := getReq()
	t := task{req: req}
	q <- t
}

// Puts of non-tracked storage (fields, channel receives) are the consumer
// half of the protocol and always allowed.
func workerDrain(q chan task) {
	for t := range q {
		putReq(t.req)
	}
}

// Growing through the pool: put the outgrown buffer, draw a bigger one,
// return the result (mirrors ReadFrameInto).
//
//mithra:owns buf
func grow(buf []byte, n int) []byte {
	if cap(buf) < n {
		putBuf(buf)
		buf = getBuf(n)
	}
	return buf[:n]
}
