// Fixture for the poolownership analyzer: the package path ends in
// "serve", which is inside the guarded scope. These stubs mirror the real
// pool API (internal/serve/pool.go) so acquisition and release sites
// resolve by name.
package serve

import "errors"

type DecideRequest struct {
	ID uint32
	In []float64
}

var errFail = errors.New("fail")

func getBuf(n int) []byte              { return make([]byte, 0, n) }
func putBuf(b []byte)                  {}
func getReq() *DecideRequest           { return new(DecideRequest) }
func putReq(r *DecideRequest)          {}
func mayPanic()                        {}
func frame(dst []byte) ([]byte, error) { return dst, nil }
