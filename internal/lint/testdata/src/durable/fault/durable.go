// Fixture for the durablewrite analyzer: the package path ends in
// "fault", which is inside the guarded scope.
package fault

import (
	"os"
	"path/filepath"
)

// syncDir is the blessed directory-sync helper, matched by name (the
// real one lives in internal/serve/wal.go).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// --- positives --------------------------------------------------------

func bareWriteFile(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644) // want "os.WriteFile is not power-loss atomic"
}

func truncateInPlace(path string) error {
	f, err := os.Create(path) // want "os.Create truncates in place"
	if err != nil {
		return err
	}
	return f.Close()
}

func openWithoutAppend(path string) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644) // want "os.OpenFile without os.O_APPEND"
	if err != nil {
		return err
	}
	return f.Close()
}

func tempWithoutSync(dir string, b []byte) error {
	f, err := os.CreateTemp(dir, "snap-*") // want "no Sync call in tempWithoutSync"
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	// The rename is never durable either: no directory sync anywhere.
	if err := os.Rename(f.Name(), filepath.Join(dir, "snap")); err != nil { // want "os.Rename here but no syncDir call"
		return err
	}
	return nil
}

func tempNeverInstalled(dir string, b []byte) error {
	f, err := os.CreateTemp(dir, "snap-*") // want "no os.Rename in tempNeverInstalled"
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

// --- negatives --------------------------------------------------------

// The blessed snapshot shape: temp file, write, fsync, atomic rename,
// directory sync (mirrors wal.StoreSnapshot).
func storeSnapshot(dir, final string, b []byte) error {
	f, err := os.CreateTemp(dir, "snap-*")
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(f.Name(), final); err != nil {
		return err
	}
	return syncDir(dir)
}

// The blessed append-log shape: O_APPEND writes tear at most the tail,
// which recovery discards.
func appendRecord(path string, b []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
