// Fixture for the nondeterminism analyzer's scoping: this package path is
// outside the guarded set, so wall-clock reads here are legal (the cmd/
// binaries report elapsed time to humans). No diagnostics expected.
package outside

import "time"

func Elapsed(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}
