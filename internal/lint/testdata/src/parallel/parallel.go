// Package parallel is a fixture stub mirroring the API surface of
// mithra/internal/parallel, so analyzer fixtures can exercise the
// fan-out entry points without importing the real module.
package parallel

func Workers(n int) int {
	if n <= 0 {
		return 1
	}
	return n
}

func ForEach(workers, n int, f func(i int) error) error {
	for i := 0; i < n; i++ {
		if err := f(i); err != nil {
			return err
		}
	}
	return nil
}

func ForEachWorker[S any](workers, n int, setup func() S, f func(state S, i int) error) error {
	state := setup()
	for i := 0; i < n; i++ {
		if err := f(state, i); err != nil {
			return err
		}
	}
	return nil
}

func Map[T any](workers, n int, f func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	for i := 0; i < n; i++ {
		v, err := f(i)
		if err != nil {
			return out, err
		}
		out[i] = v
	}
	return out, nil
}
