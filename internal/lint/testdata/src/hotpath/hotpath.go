// Fixture for the hotpathalloc analyzer. The analyzer is scoped by
// annotation, not by package path: only //mithra:hotpath functions are
// checked, so the unannotated twins double as true negatives.
package hotpath

import "fmt"

type pair struct{ a, b int }

var registry = map[string]int{}

func sink(args ...any) {}

// --- positives --------------------------------------------------------

// The acceptance case: introduce a fmt call into an annotated function
// and the lint gate fails.
//
//mithra:hotpath
func formats(n int) string {
	return fmt.Sprintf("%d", n) // want "fmt.Sprintf call in hotpath function formats allocates"
}

//mithra:hotpath
func makes(n int) []byte {
	return make([]byte, n) // want "make in hotpath function makes allocates"
}

//mithra:hotpath
func news() *pair {
	return new(pair) // want "new in hotpath function news allocates"
}

//mithra:hotpath
func composites() pair {
	return pair{1, 2} // want "composite literal in hotpath function composites allocates"
}

//mithra:hotpath
func closures() func() int {
	return func() int { return 1 } // want "func literal in hotpath function closures allocates"
}

//mithra:hotpath
func converts(b []byte) string {
	return string(b) // want "string conversion in hotpath function converts allocates"
}

//mithra:hotpath
func boxes(n int) {
	sink(n) // want "argument boxed into .* variadic in hotpath function boxes allocates"
}

// --- negatives --------------------------------------------------------

// The same constructs without the annotation are nobody's business.
func formatsUnchecked(n int) string {
	return fmt.Sprintf("%d", n)
}

// Appending within capacity, arithmetic, and indexing are free.
//
//mithra:hotpath
func clean(dst []byte, vals []uint16) []byte {
	for _, v := range vals {
		dst = append(dst, byte(v>>8), byte(v))
	}
	return dst
}

// The compiler-recognized non-allocating map-lookup idiom.
//
//mithra:hotpath
func lookup(b []byte) int {
	return registry[string(b)]
}

// A coldpath waiver on the flagged line is the audited escape hatch, in
// both trailing and standalone form.
//
//mithra:hotpath
func waived(n int) []byte {
	if n > 1024 {
		return make([]byte, n) //mithra:coldpath oversized input falls back to the heap
	}
	//mithra:coldpath the steady-state size is pre-warmed; this fixture grows once
	buf := make([]byte, 0, 1024)
	return buf[:n]
}

// Passing the variadic slice through with ... does not box per element.
//
//mithra:hotpath
func forwards(args []any) {
	sink(args...)
}
