package hotpath

// Malformed annotations are diagnostics in their own right: a broken
// annotation silently un-guards the invariant it claims to freeze. The
// empty-argument forms (//mithra:coldpath with no reason, a stray
// //mithra:hotpath outside any doc comment) cannot carry an inline want
// and are covered by TestCollectHotpathDiagnostics instead.

//mithra:frobnicate the verb does not exist -- want "unknown //mithra:frobnicate directive"

//mithra:coldpath a coldpath at file scope guards nothing -- want "misplaced //mithra:coldpath"

//mithra:hotpath spurious argument -- want "takes no arguments"
func annotatedWithArgs() {}
