// Fixture for the //lint:ignore suppression mechanism, exercised through
// the maporder analyzer (whose findings anchor on the range statement).
package ignore

import (
	"fmt"
	"io"
)

// A well-formed directive on the line above the finding suppresses it: no
// maporder diagnostic expected in this function.
func explainedIgnore(w io.Writer, m map[string]int) {
	//lint:ignore maporder debug dump, order is irrelevant to the reader
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// A trailing same-line directive works too.
func trailingIgnore(m map[string]int) []string {
	var keys []string
	for k := range m { //lint:ignore maporder keys feed a set, order never observed
		keys = append(keys, k)
	}
	return keys
}

// An unexplained ignore is itself a finding, and suppresses nothing.
func unexplainedIgnore(w io.Writer, m map[string]int) {
	/* want "has no reason; an unexplained suppression is not auditable" */ //lint:ignore maporder
	for k, v := range m {                                                   // want "map iteration writes output in Go's randomized map order"
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// Naming an unknown analyzer is a finding (a typo would otherwise disable
// a check silently), and suppresses nothing.
func typoIgnore(w io.Writer, m map[string]int) {
	//lint:ignore mapporder sorted upstream, see want "unknown analyzer \"mapporder\""
	for k, v := range m { // want "map iteration writes output in Go's randomized map order"
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// A directive for a different (valid) analyzer does not suppress this one.
func wrongAnalyzer(w io.Writer, m map[string]int) {
	//lint:ignore floatreduce no floats here
	for k, v := range m { // want "map iteration writes output in Go's randomized map order"
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// A comma list covers each named analyzer.
func listIgnore(w io.Writer, m map[string]int) {
	//lint:ignore maporder,floatreduce golden-tested rendering of a singleton map
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}
