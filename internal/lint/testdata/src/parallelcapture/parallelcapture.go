// Fixture for the parallelcapture analyzer.
package parallelcapture

import "parallel"

type result struct {
	val  float64
	done bool
}

// Positives: captured writes outside the slot pattern.

func sharedCounter(n int) (int, error) {
	count := 0
	err := parallel.ForEach(4, n, func(i int) error {
		count++ // want "writes captured variable count outside the order-indexed slot pattern"
		return nil
	})
	return count, err
}

func sharedAppend(n int) ([]int, error) {
	var out []int
	err := parallel.ForEach(4, n, func(i int) error {
		out = append(out, i*i) // want "writes captured variable out outside the order-indexed slot pattern"
		return nil
	})
	return out, err
}

func wrongIndex(n int) ([]float64, error) {
	out := make([]float64, n)
	j := 0
	err := parallel.ForEach(4, n, func(i int) error {
		out[j] = float64(i) // want "writes captured variable out outside the order-indexed slot pattern"
		j++                 // want "writes captured variable j outside the order-indexed slot pattern"
		return nil
	})
	return out, err
}

var global int

func globalWrite(n int) error {
	return parallel.ForEach(4, n, func(i int) error {
		global = i // want "writes captured variable global outside the order-indexed slot pattern"
		return nil
	})
}

func setupCapture(n int) error {
	workers := 0
	return parallel.ForEachWorker(4, n,
		func() []byte {
			workers++ // want "per-worker setup closure writes captured variable workers"
			return make([]byte, 8)
		},
		func(buf []byte, i int) error { return nil })
}

// Negatives: the blessed patterns.

func slotWrites(n int) ([]result, error) {
	out := make([]result, n)
	err := parallel.ForEach(4, n, func(i int) error {
		out[i] = result{val: float64(i), done: true}
		out[i].done = true
		return nil
	})
	return out, err
}

func pointerToSlot(n int) ([]result, error) {
	out := make([]result, n)
	err := parallel.ForEach(4, n, func(i int) error {
		e := &out[i]
		e.val = float64(i)
		e.done = true
		return nil
	})
	return out, err
}

func localState(n int) ([]float64, error) {
	return parallel.Map(4, n, func(i int) (float64, error) {
		acc := 0.0
		for j := 0; j < i; j++ {
			acc += float64(j)
		}
		return acc, nil
	})
}

func workerScratch(n int) ([]uint32, error) {
	out := make([]uint32, n)
	err := parallel.ForEachWorker(4, n,
		func() []uint32 { return make([]uint32, 16) },
		func(scratch []uint32, i int) error {
			scratch[0] = uint32(i)
			out[i] = scratch[0] * 2
			return nil
		})
	return out, err
}
