// Fixture for the nondeterminism analyzer: the package path ends in
// "core", which is inside the guarded scope.
package core

import (
	"math/rand"
	"os"
	"time"
)

// Positives: process-global entropy.

func globalRand() int {
	return rand.Intn(10) // want "rand.Intn draws from the process-global generator"
}

func globalFloat() float64 {
	rand.Shuffle(3, func(i, j int) {}) // want "rand.Shuffle draws from the process-global generator"
	return rand.Float64()              // want "rand.Float64 draws from the process-global generator"
}

func wallClock() time.Duration {
	start := time.Now()      // want "time.Now injects wall-clock state"
	return time.Since(start) // want "time.Since injects wall-clock state"
}

func pidSeed() int64 {
	return int64(os.Getpid()) // want "os.Getpid is per-process entropy"
}

// Negatives: a private seeded generator is the allowed escape hatch, and
// non-entropy uses of the same packages are untouched.

func seededRand(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

func duration() time.Duration {
	return 3 * time.Millisecond
}

func envRead() string {
	return os.Getenv("MITHRA_HOME")
}
