// Fixture for the atomicswap analyzer: the package path ends in
// "serve", which is the guarded scope.
package serve

import (
	"sync"
	"sync/atomic"
	"time"
)

type snapMap map[string]int

// Registry mirrors the serving stack's copy-on-write publication point.
type Registry struct {
	mu  sync.Mutex
	cur atomic.Pointer[snapMap]
}

// --- negatives --------------------------------------------------------

// Install is a blessed method of the owning type.
func (r *Registry) Install(m *snapMap) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cur.Store(m)
}

// NewRegistry stores into a registry constructed in this function before
// any reader can see it.
func NewRegistry() *Registry {
	r := &Registry{}
	m := snapMap{}
	r.cur.Store(&m)
	return r
}

// --- positives --------------------------------------------------------

// hijack publishes from outside the owning type, skipping the writer
// mutex and any versioning Install performs.
func hijack(r *Registry, m *snapMap) {
	r.cur.Store(m) // want "atomic.Pointer Store outside the owning type's methods"
}

func hijackSwap(r *Registry, m *snapMap) *snapMap {
	return r.cur.Swap(m) // want "atomic.Pointer Swap outside the owning type's methods"
}

// breaker mirrors the fault breaker: a 'state' field plus a
// transitionLocked method marks it as a counter-driven state machine.
type breaker struct {
	state int
	fails int
}

// --- negatives --------------------------------------------------------

// transitionLocked is the single blessed mutation point.
func (b *breaker) transitionLocked(next int) {
	b.state = next
	b.fails = 0
}

// onFailure counts and routes every edge through transitionLocked.
func (b *breaker) onFailure() {
	b.fails++
	if b.fails >= 3 {
		b.transitionLocked(1)
	}
}

// A plain function may consult the clock; only machine methods are
// frozen.
func now() time.Time {
	return time.Now()
}

// --- positives --------------------------------------------------------

// reset writes state directly, so the edge is never journaled and the
// failure counter is left stale.
func (b *breaker) reset() {
	b.state = 0 // want "direct write to breaker.state outside transitionLocked"
}

// expired makes the machine's behavior depend on wall-clock time, which
// breaks deterministic replay.
func (b *breaker) expired(since time.Time) bool {
	return time.Since(since) > time.Second // want "time.Since in a method of state machine breaker"
}
