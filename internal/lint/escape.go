package lint

import (
	"fmt"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The escape gate is the second half of the //mithra:hotpath contract
// (DESIGN.md §13). The hotpathalloc analyzer rejects allocating constructs
// it can see in the syntax; this file asks the compiler itself: it runs
// `go build -gcflags=-m`, parses the escape diagnostics, and fails when a
// value escapes to the heap inside an annotated function's line range
// without a //mithra:coldpath waiver. The two layers are deliberately
// redundant — the AST check fires in fixtures and editors without a build,
// the compiler check catches what syntax cannot (interface boxing through
// helpers, captured variables, append growth the compiler can't stack-
// allocate).

// An Escape is one compiler diagnostic that moves a value to the heap.
type Escape struct {
	File    string // path as printed by the compiler (module-root-relative)
	Line    int
	Col     int
	Message string
}

func (e Escape) String() string {
	return fmt.Sprintf("%s:%d:%d: %s", e.File, e.Line, e.Col, e.Message)
}

// ParseEscapes extracts heap-escape diagnostics from `go build
// -gcflags=-m` output. The compiler prints one diagnostic per line in the
// form `path/file.go:line:col: message`, interleaved with `# package`
// headers and non-escape notes (inlining decisions, "does not escape");
// only messages that report a heap move are kept:
//
//	x escapes to heap
//	moved to heap: x
//
// The parser is pure — it sees only text — so it is testable against
// canned output without a toolchain.
func ParseEscapes(output string) []Escape {
	var out []Escape
	for _, line := range strings.Split(output, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		file, lno, col, msg, ok := splitDiagnostic(line)
		if !ok {
			continue
		}
		if !strings.HasSuffix(msg, "escapes to heap") && !strings.HasPrefix(msg, "moved to heap:") {
			continue
		}
		out = append(out, Escape{File: file, Line: lno, Col: col, Message: msg})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].Col < out[j].Col
	})
	return out
}

// splitDiagnostic parses `file.go:line:col: message`. ok is false for
// lines in any other shape (build errors, bare notes).
func splitDiagnostic(line string) (file string, lno, col int, msg string, ok bool) {
	i := strings.Index(line, ".go:")
	if i < 0 {
		return "", 0, 0, "", false
	}
	file = line[:i+3]
	rest := line[i+4:]
	parts := strings.SplitN(rest, ":", 3)
	if len(parts) != 3 {
		return "", 0, 0, "", false
	}
	lno, err1 := strconv.Atoi(parts[0])
	col, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil {
		return "", 0, 0, "", false
	}
	return file, lno, col, strings.TrimSpace(parts[2]), true
}

// GateEscapes filters escapes down to violations of the hotpath contract:
// an escape inside an annotated function's range and not on a coldpath
// line. Escape paths are resolved against root (the module directory the
// build ran in) before matching the index, whose file names are absolute.
func GateEscapes(root string, ix *HotpathIndex, escapes []Escape) []string {
	var problems []string
	for _, e := range escapes {
		file := e.File
		if !filepath.IsAbs(file) {
			file = filepath.Join(root, file)
		}
		hf, hot := ix.InHotpath(file, e.Line)
		if !hot || ix.Cold(file, e.Line) {
			continue
		}
		problems = append(problems, fmt.Sprintf(
			"%s: heap escape in hotpath function %s: %s (fix it or mark the line //mithra:coldpath <reason>)",
			e, hf.Name, e.Message))
	}
	return problems
}

// CheckEscapes is the whole gate: scan annotations under root, run
// `go build -gcflags=-m` over the patterns, and return one problem per
// contract violation (nil: the zero-alloc path is escape-clean). The
// compiler replays cached diagnostics, so repeat runs are cheap.
func CheckEscapes(root string, patterns []string) ([]string, error) {
	ix, err := ScanHotpaths(root, patterns)
	if err != nil {
		return nil, err
	}
	if len(ix.Funcs) == 0 {
		return nil, nil
	}
	args := append([]string{"build", "-gcflags=-m"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	// -gcflags diagnostics land on stderr; a build failure surfaces there
	// too, which CombinedOutput keeps attached to the error.
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("lint: go build -gcflags=-m: %w\n%s", err, out)
	}
	return GateEscapes(root, ix, ParseEscapes(string(out))), nil
}
