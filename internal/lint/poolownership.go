package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// PoolOwnershipAnalyzer statically encodes the serve pool protocol
// (internal/serve/pool.go, DESIGN.md §12–§13): a frame buffer or decode
// request obtained from the pool is owned by exactly one goroutine until
// it is released (putBuf/putReq), transferred (returned, sent on a
// channel, handed to a goroutine, or passed to an //mithra:owns callee),
// or parked in a defer. The analyzer walks every control-flow path of a
// function in internal/serve and reports
//
//   - acquisitions that can leak (a path reaches a return, continue,
//     break, or the end of scope with the object still owned),
//   - uses of an object (or any alias of it) after its release,
//   - double releases on one path,
//   - releases of objects that never came from the pool (a foreign
//     buffer poisons the size-class and debug-canary tracking).
//
// Aliases are tracked through assignments, composite literals holding the
// object (task{req: req}), and same-typed results of calls the object was
// passed to (frame, err := AppendFrame(buf, msg) makes frame an alias of
// buf). Channel receives are the protocol's entry point on the consumer
// side and are deliberately untracked: the worker's putReq(t.req) is a
// release of a field selector, which is always an allowed origin.
var PoolOwnershipAnalyzer = &Analyzer{
	Name: "poolownership",
	Doc: `enforce the pooled-object ownership protocol in internal/serve

Every getBuf/getReq acquisition (and every parameter declared in an
//mithra:owns doc line) must be released with putBuf/putReq, returned,
sent on a channel, handed to go/defer, or passed to an //mithra:owns
callee on every control-flow path; no alias may be used after the
release; nothing may be put that is not pool-originated.`,
	Run: runPoolOwnership,
}

// poolScope guards the serving runtime by final import-path element.
var poolScope = map[string]bool{
	"serve": true,
}

// poolAcquire maps acquisition functions to what they hand out;
// poolRelease maps release functions to the same vocabulary.
var poolAcquire = map[string]string{
	"getBuf": "buffer from getBuf",
	"getReq": "request from getReq",
}

var poolRelease = map[string]bool{
	"putBuf": true,
	"putReq": true,
}

func runPoolOwnership(pass *Pass) error {
	if pass.Pkg == nil || !poolScope[pathBase(pass.Pkg.Path())] {
		return nil
	}
	owns := collectOwns(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a := &ownAnalysis{pass: pass, owns: owns, fd: fd,
				locallyBuilt: map[types.Object]bool{}}
			st := newOwnState()
			a.seedOwnedParams(st)
			term := a.walk(fd.Body.List, st, nil)
			if !term {
				a.leakCheck(st, nil)
			}
			a.reportLeaks()
		}
	}
	return nil
}

// collectOwns maps function objects to the parameter index their
// //mithra:owns doc line names, validating the parameter exists.
func collectOwns(pass *Pass) map[types.Object]int {
	out := map[types.Object]int{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				rest, ok := strings.CutPrefix(c.Text, ownsDirective+" ")
				if !ok {
					continue
				}
				name := strings.TrimSpace(rest)
				idx := paramIndex(fd, name)
				if idx < 0 {
					pass.Reportf(c.Pos(), "//mithra:owns names unknown parameter %q of %s", name, fd.Name.Name)
					continue
				}
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					out[obj] = idx
				}
			}
		}
	}
	return out
}

// paramIndex finds a parameter's flattened position, -1 if absent.
func paramIndex(fd *ast.FuncDecl, name string) int {
	i := 0
	for _, field := range fd.Type.Params.List {
		for _, n := range field.Names {
			if n.Name == name {
				return i
			}
			i++
		}
		if len(field.Names) == 0 {
			i++
		}
	}
	return -1
}

// An ownGroup tracks one pooled object and every alias of it within one
// function.
type ownGroup struct {
	id      int
	what    string // "buffer from getBuf", "owned parameter req", ...
	pos     token.Pos
	typ     types.Type // the pooled object's static type, for call aliasing
	members map[types.Object]bool

	deferred bool // a defer releases it on every remaining path
	leaked   bool // reported (once) after the walk
}

// ownState is the per-path ownership state: which groups still await
// release, and which were already released on this path (for
// use-after-put detection).
type ownState struct {
	pending map[int]bool
	putAt   map[int]bool
}

func newOwnState() *ownState {
	return &ownState{pending: map[int]bool{}, putAt: map[int]bool{}}
}

func (st *ownState) clone() *ownState {
	c := newOwnState()
	for k, v := range st.pending {
		c.pending[k] = v
	}
	for k, v := range st.putAt {
		c.putAt[k] = v
	}
	return c
}

// merge folds a non-terminating branch outcome into st (OR semantics:
// pending or released-earlier on any surviving path).
func (st *ownState) merge(b *ownState) {
	for k, v := range b.pending {
		if v {
			st.pending[k] = true
		}
	}
	for k, v := range b.putAt {
		if v {
			st.putAt[k] = true
		}
	}
}

// loopFrame records which groups pre-existed a loop, so continue/break
// and end-of-body only leak-check groups acquired inside the iteration.
type loopFrame struct {
	outer map[int]bool
}

type ownAnalysis struct {
	pass         *Pass
	owns         map[types.Object]int
	fd           *ast.FuncDecl
	groups       []*ownGroup
	locallyBuilt map[types.Object]bool
}

// seedOwnedParams creates a group for each //mithra:owns parameter of the
// function under analysis: ownership arrives at entry and must leave on
// every path.
func (a *ownAnalysis) seedOwnedParams(st *ownState) {
	obj := a.pass.TypesInfo.Defs[a.fd.Name]
	idx, ok := a.owns[obj]
	if !ok {
		return
	}
	i := 0
	for _, field := range a.fd.Type.Params.List {
		for _, n := range field.Names {
			if i == idx {
				if pobj := a.pass.TypesInfo.Defs[n]; pobj != nil {
					g := a.newGroup("owned parameter "+n.Name, n.Pos(), pobj.Type(), pobj)
					a.markPending(g, st)
				}
			}
			i++
		}
		if len(field.Names) == 0 {
			i++
		}
	}
}

func (a *ownAnalysis) newGroup(what string, pos token.Pos, typ types.Type, obj types.Object) *ownGroup {
	g := &ownGroup{id: len(a.groups), what: what, pos: pos, typ: typ,
		members: map[types.Object]bool{}}
	if obj != nil {
		g.members[obj] = true
	}
	a.groups = append(a.groups, g)
	return g
}

// groupOf returns the group an expression's root object belongs to, nil
// when untracked.
func (a *ownAnalysis) groupOf(obj types.Object) *ownGroup {
	if obj == nil {
		return nil
	}
	for _, g := range a.groups {
		if g.members[obj] {
			return g
		}
	}
	return nil
}

// mentioned returns the groups any identifier inside n resolves into.
func (a *ownAnalysis) mentioned(n ast.Node) []*ownGroup {
	if n == nil {
		return nil
	}
	seen := map[int]bool{}
	var out []*ownGroup
	ast.Inspect(n, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		obj := a.pass.TypesInfo.Uses[id]
		if obj == nil {
			obj = a.pass.TypesInfo.Defs[id]
		}
		if obj == nil {
			return true
		}
		// One name can belong to several groups at once (the
		// put-then-reacquire rebind keeps it in the old group for the
		// sibling path); report every one.
		for _, g := range a.groups {
			if g.members[obj] && !seen[g.id] {
				seen[g.id] = true
				out = append(out, g)
			}
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// leakCheck marks every pending, undeferred group as leaked. With a
// frame, only groups born inside the current loop iteration are checked
// (outer groups survive into code after the loop).
func (a *ownAnalysis) leakCheck(st *ownState, frame *loopFrame) {
	for _, g := range a.groups {
		if !st.pending[g.id] || g.deferred {
			continue
		}
		if frame != nil && frame.outer[g.id] {
			continue
		}
		g.leaked = true
		st.pending[g.id] = false
	}
}

func (a *ownAnalysis) reportLeaks() {
	for _, g := range a.groups {
		if g.leaked {
			a.pass.Reportf(g.pos, "pooled %s is not released, returned, or transferred on every path; a leaked pool object defeats the zero-alloc steady state", g.what)
		}
	}
}

// resolve marks a group released/transferred on this path. asPut also
// arms use-after-put tracking (transfers hand the object to code that
// may legally keep using it on its side; releases must not be followed
// by any local use).
func (a *ownAnalysis) resolve(st *ownState, g *ownGroup, asPut bool) {
	st.pending[g.id] = false
	if asPut {
		st.putAt[g.id] = true
	}
}

// walk processes a statement sequence, returning whether every path
// through it terminates (return/branch) before falling off the end.
// frames is the enclosing loop stack (innermost last).
func (a *ownAnalysis) walk(stmts []ast.Stmt, st *ownState, frames []*loopFrame) bool {
	for _, s := range stmts {
		if a.stmt(s, st, frames) {
			return true
		}
	}
	return false
}

// stmt processes one statement; true means control never continues past
// it on any path.
func (a *ownAnalysis) stmt(s ast.Stmt, st *ownState, frames []*loopFrame) bool {
	switch v := s.(type) {
	case *ast.ExprStmt:
		call, isCall := v.X.(*ast.CallExpr)
		if isCall && isReleaseExpr(call) {
			// A release gets its own double-put diagnostic; the generic
			// use-after-put check would shadow it.
			a.exprEffects(v.X, st)
			return false
		}
		a.useCheck(v, st, nil)
		if isCall {
			a.bareAcquireCheck(call)
			a.exprEffects(v.X, st)
		}
		return false

	case *ast.AssignStmt:
		a.assign(v, st)
		return false

	case *ast.DeclStmt:
		a.useCheck(v, st, nil)
		if gd, ok := v.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					a.valueSpec(vs, st)
				}
			}
		}
		return false

	case *ast.SendStmt:
		a.useCheck(v, st, nil)
		for _, g := range a.mentioned(v.Value) {
			if st.pending[g.id] {
				a.resolve(st, g, false)
			}
		}
		return false

	case *ast.GoStmt:
		a.useCheck(v, st, nil)
		for _, g := range a.mentioned(v.Call) {
			if st.pending[g.id] {
				a.resolve(st, g, false)
			}
		}
		return false

	case *ast.DeferStmt:
		a.deferStmt(v, st)
		return false

	case *ast.ReturnStmt:
		a.useCheck(v, st, nil)
		for _, r := range v.Results {
			for _, g := range a.mentioned(r) {
				a.resolve(st, g, false)
			}
		}
		a.leakCheck(st, nil)
		return true

	case *ast.BranchStmt:
		return a.branch(v, st, frames)

	case *ast.BlockStmt:
		return a.walk(v.List, st, frames)

	case *ast.LabeledStmt:
		return a.stmt(v.Stmt, st, frames)

	case *ast.IfStmt:
		if v.Init != nil {
			a.stmt(v.Init, st, frames)
		}
		a.useCheck(v.Cond, st, nil)
		thenSt := st.clone()
		thenTerm := a.walk(v.Body.List, thenSt, frames)
		elseSt := st.clone()
		elseTerm := false
		if v.Else != nil {
			elseTerm = a.stmt(v.Else, elseSt, frames)
		}
		*st = *newOwnState()
		if !thenTerm {
			st.merge(thenSt)
		}
		if !elseTerm {
			st.merge(elseSt)
		}
		return thenTerm && elseTerm

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return a.branchy(v, st, frames)

	case *ast.ForStmt:
		if v.Init != nil {
			a.stmt(v.Init, st, frames)
		}
		a.loopBody(v.Body, st, frames, v.Cond == nil)
		if v.Cond == nil && !hasBreak(v.Body) {
			return true // for {} with no break never falls through
		}
		return false

	case *ast.RangeStmt:
		a.useCheck(v.X, st, nil)
		a.loopBody(v.Body, st, frames, false)
		return false

	case *ast.IncDecStmt:
		a.useCheck(v, st, nil)
		return false

	default:
		return false
	}
}

// loopBody walks one loop body under a fresh loop frame. The body's
// outcome does not feed the post-loop state: acquisitions inside are
// iteration-local (checked at each iteration exit), and releases inside
// cannot satisfy an outer acquisition (the loop may run zero times).
func (a *ownAnalysis) loopBody(body *ast.BlockStmt, st *ownState, frames []*loopFrame, infinite bool) {
	frame := &loopFrame{outer: map[int]bool{}}
	for id, p := range st.pending {
		if p {
			frame.outer[id] = true
		}
	}
	bodySt := st.clone()
	if term := a.walk(body.List, bodySt, append(frames, frame)); !term {
		// Falling off the body's end is an iteration boundary: anything
		// acquired this iteration must already be resolved.
		a.leakCheck(bodySt, frame)
	}
}

// branchy handles switch/type-switch/select: walk each clause from the
// same entry state and merge the survivors. A switch without a default
// may skip every clause; a select without a default always runs one.
func (a *ownAnalysis) branchy(s ast.Stmt, st *ownState, frames []*loopFrame) bool {
	var clauses []ast.Stmt
	hasDefault := false
	switch v := s.(type) {
	case *ast.SwitchStmt:
		if v.Init != nil {
			a.stmt(v.Init, st, frames)
		}
		a.useCheck(v.Tag, st, nil)
		clauses = v.Body.List
	case *ast.TypeSwitchStmt:
		if v.Init != nil {
			a.stmt(v.Init, st, frames)
		}
		clauses = v.Body.List
	case *ast.SelectStmt:
		clauses = v.Body.List
	}

	merged := newOwnState()
	any := false
	allTerm := true
	for _, cl := range clauses {
		clSt := st.clone()
		var body []ast.Stmt
		switch c := cl.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			body = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				a.stmt(c.Comm, clSt, frames)
			}
			body = c.Body
		}
		if term := a.walk(body, clSt, frames); !term {
			merged.merge(clSt)
			any = true
			allTerm = false
		}
	}
	_, isSelect := s.(*ast.SelectStmt)
	if !hasDefault && !isSelect || len(clauses) == 0 {
		// The skip path: no clause matched.
		merged.merge(st)
		any = true
		allTerm = false
	}
	if any {
		*st = *merged
	}
	return allTerm && len(clauses) > 0
}

// branch handles break/continue/goto at an iteration or scope boundary.
func (a *ownAnalysis) branch(v *ast.BranchStmt, st *ownState, frames []*loopFrame) bool {
	switch v.Tok {
	case token.CONTINUE, token.BREAK:
		// Both are iteration/loop exits for ownership purposes: anything
		// acquired inside the innermost loop must be resolved. (An
		// unlabeled break inside switch/select only exits the clause — the
		// clause walk treats it as termination either way, and the
		// conservative loop-frame check still only fires for objects the
		// iteration itself acquired.)
		if len(frames) > 0 {
			a.leakCheck(st, frames[len(frames)-1])
		} else {
			a.leakCheck(st, nil)
		}
		return true
	case token.GOTO:
		a.leakCheck(st, nil)
		return true
	case token.FALLTHROUGH:
		return false
	}
	return false
}

// hasBreak reports whether a loop body contains any break (labeled or
// not) at its own nesting level — good enough to tell `for { select ...
// return } }` apart from loops that do fall through.
func hasBreak(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.BranchStmt:
			if v.Tok == token.BREAK {
				found = true
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
			return false // a break in there targets that construct
		}
		return !found
	})
	return found
}

// deferStmt parks releases: a deferred putX(v) (directly or inside a
// deferred closure) covers every remaining path, including panics — the
// panic-safety half of the protocol.
func (a *ownAnalysis) deferStmt(v *ast.DeferStmt, st *ownState) {
	resolved := map[int]bool{}
	ast.Inspect(v.Call, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && poolRelease[id.Name] && len(call.Args) == 1 {
			for _, g := range a.mentioned(call.Args[0]) {
				g.deferred = true
				resolved[g.id] = true
			}
			a.foreignPutCheck(call)
		}
		return true
	})
	// A defer that hands the object to any other call (conn teardown
	// helpers) is also a transfer for the remaining paths.
	if len(resolved) == 0 {
		for _, g := range a.mentioned(v.Call) {
			g.deferred = true
		}
	}
	_ = st
}

// bareAcquireCheck flags an acquisition whose result is dropped.
func (a *ownAnalysis) bareAcquireCheck(call *ast.CallExpr) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if what, isAcq := poolAcquire[id.Name]; isAcq {
			a.pass.Reportf(call.Pos(), "result of %s is discarded; the pooled %s leaks immediately", id.Name, what)
		}
	}
}

// isReleaseExpr recognizes putBuf(x)/putReq(x) calls.
func isReleaseExpr(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && poolRelease[id.Name] && len(call.Args) == 1
}

// exprEffects applies the ownership effects of a call expression used as
// a statement: releases, owns-transfers, and double-put detection.
func (a *ownAnalysis) exprEffects(x ast.Expr, st *ownState) {
	call, ok := x.(*ast.CallExpr)
	if !ok {
		return
	}
	if isReleaseExpr(call) {
		a.foreignPutCheck(call)
		for _, g := range a.mentioned(call.Args[0]) {
			if st.putAt[g.id] && !st.pending[g.id] {
				a.pass.Reportf(call.Pos(), "pooled %s is returned to the pool twice on this path", g.what)
				continue
			}
			a.resolve(st, g, true)
		}
		return
	}
	a.ownsTransfer(call, st)
}

// ownsTransfer resolves groups passed to an //mithra:owns parameter.
func (a *ownAnalysis) ownsTransfer(call *ast.CallExpr, st *ownState) {
	obj := calleeObject(a.pass.TypesInfo, call)
	if obj == nil {
		return
	}
	idx, ok := a.owns[obj]
	if !ok || idx >= len(call.Args) {
		return
	}
	for _, g := range a.mentioned(call.Args[idx]) {
		if st.pending[g.id] {
			a.resolve(st, g, false)
		}
	}
}

// calleeObject resolves a call's callee to its declared function object
// (same-package functions and methods; nil otherwise).
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		return info.Uses[fun.Sel]
	}
	return nil
}

// foreignPutCheck rejects releases of objects that cannot have come from
// the pool: literals, fresh make/new results, and locals built from them.
func (a *ownAnalysis) foreignPutCheck(call *ast.CallExpr) {
	arg := call.Args[0]
	for {
		switch v := arg.(type) {
		case *ast.ParenExpr:
			arg = v.X
			continue
		case *ast.SliceExpr:
			arg = v.X
			continue
		}
		break
	}
	fn := "put"
	if id, ok := call.Fun.(*ast.Ident); ok {
		fn = id.Name
	}
	switch v := arg.(type) {
	case *ast.CompositeLit:
		a.pass.Reportf(call.Pos(), "%s of a composite literal that never came from the pool; foreign objects poison the size-class and canary tracking", fn)
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			a.pass.Reportf(call.Pos(), "%s of a freshly constructed object that never came from the pool; foreign objects poison the size-class and canary tracking", fn)
		}
	case *ast.CallExpr:
		if id, ok := v.Fun.(*ast.Ident); ok {
			if obj, isBuiltin := a.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && (obj.Name() == "make" || obj.Name() == "new") {
				a.pass.Reportf(call.Pos(), "%s of a fresh %s result that never came from the pool; foreign objects poison the size-class and canary tracking", fn, obj.Name())
			}
		}
	case *ast.Ident:
		obj := a.pass.TypesInfo.Uses[v]
		if obj != nil && a.locallyBuilt[obj] && a.groupOf(obj) == nil {
			a.pass.Reportf(call.Pos(), "%s of %s, which was built locally and never came from the pool; foreign objects poison the size-class and canary tracking", fn, v.Name)
		}
	}
}

// useCheck reports any mention of a group member after that group was
// released on the current path. exceptLHS suppresses the check for a
// plain-identifier rebind target.
func (a *ownAnalysis) useCheck(n ast.Node, st *ownState, except map[types.Object]bool) {
	if n == nil {
		return
	}
	for _, g := range a.mentioned(n) {
		if !st.putAt[g.id] {
			continue
		}
		if except != nil && allMentionsExcepted(a.pass.TypesInfo, n, g, except) {
			continue
		}
		a.pass.Reportf(n.Pos(), "use of pooled %s after it was returned to the pool; a stale alias can corrupt another request's frame", g.what)
		st.putAt[g.id] = false // one report per release event
	}
}

// allMentionsExcepted reports whether every mention of g inside n is one
// of the excepted objects (the rebind LHS).
func allMentionsExcepted(info *types.Info, n ast.Node, g *ownGroup, except map[types.Object]bool) bool {
	ok := true
	ast.Inspect(n, func(x ast.Node) bool {
		id, isIdent := x.(*ast.Ident)
		if !isIdent {
			return ok
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if obj != nil && g.members[obj] && !except[obj] {
			ok = false
		}
		return ok
	})
	return ok
}

// valueSpec handles var declarations with initializers (aliasing only;
// acquisitions via var x = getReq() included).
func (a *ownAnalysis) valueSpec(vs *ast.ValueSpec, st *ownState) {
	for i, name := range vs.Names {
		if i < len(vs.Values) {
			a.bind(name, vs.Values[i], st, len(vs.Names) == len(vs.Values))
		}
	}
}

// assign processes one assignment: use-after-put on the RHS, rebinds,
// acquisitions, aliasing, locally-built tracking, owns-transfers.
func (a *ownAnalysis) assign(v *ast.AssignStmt, st *ownState) {
	info := a.pass.TypesInfo

	// Rebind targets are exempt from the use-after-put check; everything
	// else on the statement is a real use.
	rebinds := map[types.Object]bool{}
	for _, lhs := range v.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj != nil {
				rebinds[obj] = true
			}
		}
	}
	a.useCheck(v, st, rebinds)

	// Tuple-call form: x, y := f(...).
	if len(v.Lhs) > 1 && len(v.Rhs) == 1 {
		call, _ := v.Rhs[0].(*ast.CallExpr)
		for _, lhs := range v.Lhs {
			a.bindFromCall(lhs, call, v.Rhs[0], st)
		}
		if call != nil {
			a.ownsTransfer(call, st)
		}
		return
	}
	for i, lhs := range v.Lhs {
		if i < len(v.Rhs) {
			a.bind(lhs, v.Rhs[i], st, true)
			if call, ok := v.Rhs[i].(*ast.CallExpr); ok {
				a.ownsTransfer(call, st)
			}
		}
	}
}

// bind applies one lhs = rhs pair.
func (a *ownAnalysis) bind(lhs ast.Expr, rhs ast.Expr, st *ownState, paired bool) {
	info := a.pass.TypesInfo
	id, isIdent := lhs.(*ast.Ident)
	var obj types.Object
	if isIdent {
		obj = info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
	}

	// Acquisition: x := getBuf(n) / getReq(). On a put-then-reacquire
	// rebind (putBuf(buf); buf = getBuf(n)) the name is NOT detached from
	// its old group: a sibling control-flow path may still hold the old
	// object under this name, and the return that transfers both must
	// resolve both. Only the stale-alias arming is cleared — through this
	// name the old object is no longer reachable on this path.
	if call, ok := rhs.(*ast.CallExpr); ok && paired {
		if fid, ok := call.Fun.(*ast.Ident); ok {
			if what, isAcq := poolAcquire[fid.Name]; isAcq {
				if obj == nil {
					a.bareAcquireCheck(call)
					return
				}
				for _, g := range a.groups {
					if g.members[obj] && st.putAt[g.id] {
						st.putAt[g.id] = false
					}
				}
				g := a.newGroup(what, call.Pos(), obj.Type(), obj)
				a.markPending(g, st)
				a.locallyBuilt[obj] = false
				return
			}
		}
	}

	groups := a.mentioned(rhs)
	switch {
	case len(groups) > 0 && obj != nil:
		if _, isCall := rhs.(*ast.CallExpr); isCall {
			a.bindFromCall(lhs, rhs.(*ast.CallExpr), rhs, st)
			return
		}
		// Join every group the initializer mentions (buf = buf[:n] keeps
		// buf in each group it already aliased).
		a.detach(obj)
		for _, g := range groups {
			g.members[obj] = true
		}
		a.locallyBuilt[obj] = false
	case obj != nil:
		// Plain rebind away from any group.
		a.detach(obj)
		a.locallyBuilt[obj] = isLocallyBuiltExpr(info, rhs)
	}
}

// bindFromCall adds a call-result lhs to a group the call's arguments
// mention, but only when the static types agree — AppendFrame(buf, ...)
// returns an alias of buf ([]byte -> []byte), while
// ParseDecideRequestInto(payload, req) returns a bench []byte and error
// that alias neither pooled object.
func (a *ownAnalysis) bindFromCall(lhs ast.Expr, call *ast.CallExpr, rhs ast.Expr, st *ownState) {
	info := a.pass.TypesInfo
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return
	}
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	if obj == nil {
		return
	}
	// Collect the argument groups before detaching: in the self-rebind
	// form (buf = append(buf, ...)) the detach would otherwise erase the
	// very membership that makes the result an alias.
	var groups []*ownGroup
	if call != nil {
		for _, arg := range call.Args {
			groups = append(groups, a.mentioned(arg)...)
		}
	}
	a.detach(obj)
	a.locallyBuilt[obj] = false
	for _, g := range groups {
		if g.typ != nil && obj.Type() != nil && types.Identical(g.typ, obj.Type()) {
			g.members[obj] = true
		}
	}
	_ = st
	_ = rhs
}

// markPending flags a (possibly new) group as awaiting release.
func (a *ownAnalysis) markPending(g *ownGroup, st *ownState) {
	st.pending[g.id] = true
}

// detach removes an object from every group (it is being rebound).
func (a *ownAnalysis) detach(obj types.Object) {
	for _, g := range a.groups {
		delete(g.members, obj)
	}
}

// isLocallyBuiltExpr recognizes initializers that cannot be pooled
// objects: composite literals, &composites, make, new.
func isLocallyBuiltExpr(info *types.Info, rhs ast.Expr) bool {
	switch v := rhs.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, isLit := v.X.(*ast.CompositeLit)
		return v.Op == token.AND && isLit
	case *ast.CallExpr:
		if id, ok := v.Fun.(*ast.Ident); ok {
			if obj, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				return obj.Name() == "make" || obj.Name() == "new"
			}
		}
	}
	return false
}
