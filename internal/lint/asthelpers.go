package lint

import (
	"go/ast"
	"go/types"
)

// pkgNameOf resolves an expression to the imported package it names, or
// nil if it is not a package qualifier.
func pkgNameOf(info *types.Info, x ast.Expr) *types.PkgName {
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil
	}
	pn, _ := info.Uses[id].(*types.PkgName)
	return pn
}

// pkgCall reports the (package import path, function name) of a call whose
// callee is a package-qualified identifier like fmt.Fprintf or
// parallel.Map[int], unwrapping explicit generic instantiation. ok is
// false for method calls, locals, and builtins.
func pkgCall(info *types.Info, call *ast.CallExpr) (path, name string, ok bool) {
	fun := call.Fun
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		fun = idx.X
	case *ast.IndexListExpr:
		fun = idx.X
	}
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	pn := pkgNameOf(info, sel.X)
	if pn == nil {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// parallelFuncs are the fan-out entry points of the execution engine. They
// are matched by package *name* (not path) so the analyzers work both on
// the real mithra/internal/parallel and on the testdata fixture stub.
var parallelFuncs = map[string]bool{
	"ForEach":       true,
	"ForEachWorker": true,
	"Map":           true,
}

// parallelCall matches a call to parallel.ForEach/Map/ForEachWorker and
// returns the function name. ok is false for anything else.
func parallelCall(info *types.Info, call *ast.CallExpr) (name string, ok bool) {
	fun := call.Fun
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		fun = idx.X
	case *ast.IndexListExpr:
		fun = idx.X
	}
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	pn := pkgNameOf(info, sel.X)
	if pn == nil || pn.Imported().Name() != "parallel" || !parallelFuncs[sel.Sel.Name] {
		return "", false
	}
	return sel.Sel.Name, true
}

// closureParams flattens the parameter objects of a func literal in
// declaration order.
func closureParams(info *types.Info, lit *ast.FuncLit) []types.Object {
	var out []types.Object
	if lit.Type.Params == nil {
		return out
	}
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

// rootIdent unwraps parens, selectors, index expressions, and derefs down
// to the base identifier of an lvalue (out[i].f -> out), or nil if the
// base is not an identifier.
func rootIdent(x ast.Expr) *ast.Ident {
	for {
		switch v := x.(type) {
		case *ast.Ident:
			return v
		case *ast.ParenExpr:
			x = v.X
		case *ast.SelectorExpr:
			x = v.X
		case *ast.IndexExpr:
			x = v.X
		case *ast.IndexListExpr:
			x = v.X
		case *ast.StarExpr:
			x = v.X
		default:
			return nil
		}
	}
}

// mentionsObj reports whether any identifier inside x resolves to obj.
func mentionsObj(info *types.Info, x ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(x, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// indexedByObj reports whether the lvalue path of x contains an index
// expression whose index mentions obj — the order-indexed slot shape
// out[i] = v (and out[i].field, out[rows[i]], ...).
func indexedByObj(info *types.Info, x ast.Expr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	for {
		switch v := x.(type) {
		case *ast.ParenExpr:
			x = v.X
		case *ast.SelectorExpr:
			x = v.X
		case *ast.StarExpr:
			x = v.X
		case *ast.IndexExpr:
			if mentionsObj(info, v.Index, obj) {
				return true
			}
			x = v.X
		case *ast.IndexListExpr:
			x = v.X
		default:
			return false
		}
	}
}

// declaredWithin reports whether obj's declaration lies inside node's
// source range — i.e. the object is local to that closure or block.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj != nil && obj.Pos() != 0 && node.Pos() <= obj.Pos() && obj.Pos() < node.End()
}

// isFloat reports whether t's underlying type is a floating-point scalar.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// pathBase returns the last element of a slash-separated import path.
func pathBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
