package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// DirectiveCheck is the pseudo-analyzer name attached to diagnostics about
// the suppression mechanism itself (malformed or unexplained
// //lint:ignore comments). It is driver-owned and cannot be suppressed.
const DirectiveCheck = "ignoredirective"

// A directive is one parsed //lint:ignore comment.
type directive struct {
	pos       token.Pos
	line      int    // line the comment sits on
	analyzers string // comma-separated analyzer list, "" if missing
	reason    string // "" if missing
}

// covers reports whether the directive waives the named analyzer.
func (d *directive) covers(name string) bool {
	for _, a := range strings.Split(d.analyzers, ",") {
		if strings.TrimSpace(a) == name {
			return true
		}
	}
	return false
}

// directivePrefix is the comment marker. The "//lint:" namespace follows
// staticcheck's convention so editors highlight it as a machine directive
// (no space after //).
const directivePrefix = "//lint:ignore"

// parseDirectives extracts every //lint:ignore directive from a file,
// keyed by the line it occupies. A directive on line L waives matching
// diagnostics reported on line L (trailing comment) or line L+1 (comment
// block standing above the flagged statement).
func parseDirectives(fset *token.FileSet, f *ast.File) map[int]*directive {
	out := map[int]*directive{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, directivePrefix)
			d := &directive{pos: c.Pos(), line: fset.Position(c.Pos()).Line}
			fields := strings.Fields(rest)
			if len(fields) > 0 {
				d.analyzers = fields[0]
			}
			if len(fields) > 1 {
				d.reason = strings.Join(fields[1:], " ")
			}
			out[d.line] = d
		}
	}
	return out
}

// checkDirective validates one directive, returning a diagnostic message
// for a malformed one ("" when well-formed). An ignore without a reason is
// itself a finding: an unexplained waiver is exactly the silent rot the
// suite exists to prevent.
func checkDirective(d *directive) string {
	if d.analyzers == "" {
		return "malformed //lint:ignore directive: want //lint:ignore <analyzer> <reason>"
	}
	for _, a := range strings.Split(d.analyzers, ",") {
		a = strings.TrimSpace(a)
		if a == "" || byName(a) == nil {
			return "//lint:ignore names unknown analyzer " + quoted(a) + " (known: " + knownNames() + ")"
		}
	}
	if d.reason == "" {
		return "//lint:ignore " + d.analyzers + " has no reason; an unexplained suppression is not auditable"
	}
	return ""
}

func quoted(s string) string { return "\"" + s + "\"" }
