package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// The //mithra: annotation namespace marks the serving stack's performance
// contract in the source itself (DESIGN.md §13):
//
//	//mithra:hotpath
//		on a function's doc comment: the function is part of the
//		zero-allocation decide path. The hotpathalloc analyzer forbids
//		allocating constructs in its body, and the escape gate
//		(go build -gcflags=-m, parsed by escape.go) forbids new heap
//		escapes inside its line range.
//
//	//mithra:coldpath <reason>
//		inside a hotpath function: the statement on this line (trailing
//		comment) or the statement below (standalone comment, covering
//		that statement's whole line range) is an acknowledged cold
//		branch — an error path, a grow-once buffer fill — where
//		allocation is deliberate. The reason is mandatory, so every
//		exemption from the zero-alloc contract stays auditable.
//
//	//mithra:owns <param>
//		on a function's doc comment: calling this function transfers
//		ownership of the pooled object passed as <param> (the
//		poolownership analyzer then requires the function to release it
//		on every path, and stops requiring the caller to).
//
// A malformed annotation — an unknown verb, a misplaced hotpath, a
// coldpath with no reason or outside any hotpath function — is itself a
// diagnostic: a broken annotation silently un-guards the exact invariant
// it claims to freeze.
const (
	mithraPrefix      = "//mithra:"
	hotpathDirective  = "//mithra:hotpath"
	coldpathDirective = "//mithra:coldpath"
	ownsDirective     = "//mithra:owns"
)

// HotpathFunc is one function annotated //mithra:hotpath.
type HotpathFunc struct {
	Name      string // rendered name, e.g. "(*Hasher).HashIndexed"
	File      string
	StartLine int
	EndLine   int
}

// coldRange is one //mithra:coldpath allowance, as an inclusive line range.
type coldRange struct {
	file       string
	start, end int
}

// HotpathIndex maps source lines to the hotpath/coldpath annotations that
// govern them. One index covers any number of files.
type HotpathIndex struct {
	Funcs []HotpathFunc
	cold  []coldRange
}

// InHotpath reports the annotated function covering file:line, if any.
func (ix *HotpathIndex) InHotpath(file string, line int) (HotpathFunc, bool) {
	for _, f := range ix.Funcs {
		if f.File == file && f.StartLine <= line && line <= f.EndLine {
			return f, true
		}
	}
	return HotpathFunc{}, false
}

// Cold reports whether file:line is covered by a coldpath allowance.
func (ix *HotpathIndex) Cold(file string, line int) bool {
	for _, c := range ix.cold {
		if c.file == file && c.start <= line && line <= c.end {
			return true
		}
	}
	return false
}

// collectHotpaths scans one file's comments for //mithra: annotations,
// adding well-formed ones to ix and reporting malformed ones through
// report (which may be nil to ignore them; the hotpathalloc analyzer
// passes its Pass.Reportf).
func collectHotpaths(fset *token.FileSet, f *ast.File, ix *HotpathIndex, report func(token.Pos, string, ...any)) {
	if report == nil {
		report = func(token.Pos, string, ...any) {}
	}
	filename := fset.Position(f.Pos()).Filename

	// Hotpath functions: the directive must be a line of a FuncDecl's doc
	// comment. Index doc comment groups first so stray hotpath directives
	// can be told apart from attached ones.
	docOf := map[*ast.CommentGroup]*ast.FuncDecl{}
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
			docOf[fd.Doc] = fd
		}
	}

	// Statement line ranges, for standalone coldpath comments: a comment
	// on line L covers the statement starting on line L+1, including
	// everything that statement spans (so one annotation above an
	// `if cap(...) < n` grow block covers the whole block).
	stmtRange := map[int][2]int{} // start line -> [start, end]
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if s, ok := n.(ast.Stmt); ok {
				start := fset.Position(s.Pos()).Line
				end := fset.Position(s.End()).Line
				if r, seen := stmtRange[start]; !seen || end > r[1] {
					stmtRange[start] = [2]int{start, end}
				}
			}
			return true
		})
	}

	funcRanges := make([][2]int, 0, len(docOf))
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
			funcRanges = append(funcRanges, [2]int{
				fset.Position(fd.Body.Pos()).Line, fset.Position(fd.Body.End()).Line,
			})
		}
	}
	inAnyFunc := func(line int) bool {
		for _, r := range funcRanges {
			if r[0] <= line && line <= r[1] {
				return true
			}
		}
		return false
	}

	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, mithraPrefix) {
				continue
			}
			verb, rest, _ := strings.Cut(strings.TrimPrefix(c.Text, mithraPrefix), " ")
			line := fset.Position(c.Pos()).Line
			switch verb {
			case "hotpath":
				if strings.TrimSpace(rest) != "" {
					report(c.Pos(), "malformed //mithra:hotpath: the directive takes no arguments (got %q)", strings.TrimSpace(rest))
					continue
				}
				fd := docOf[cg]
				if fd == nil || fd.Body == nil {
					report(c.Pos(), "misplaced //mithra:hotpath: the directive must be a line of a function's doc comment")
					continue
				}
				ix.Funcs = append(ix.Funcs, HotpathFunc{
					Name:      funcDisplayName(fd),
					File:      filename,
					StartLine: fset.Position(fd.Pos()).Line,
					EndLine:   fset.Position(fd.End()).Line,
				})
			case "coldpath":
				if strings.TrimSpace(rest) == "" {
					report(c.Pos(), "//mithra:coldpath has no reason; an unexplained allocation waiver is not auditable")
					continue
				}
				if !inAnyFunc(line) {
					report(c.Pos(), "misplaced //mithra:coldpath: the directive must sit on or above a statement inside a function")
					continue
				}
				cr := coldRange{file: filename, start: line, end: line}
				if r, ok := stmtRange[line+1]; ok && !trailingComment(fset, f, c) {
					cr.start, cr.end = r[0], r[1]
				}
				ix.cold = append(ix.cold, cr)
			case "owns":
				// Validated by the poolownership analyzer, which knows the
				// parameter lists; here only the empty form is malformed.
				if strings.TrimSpace(rest) == "" {
					report(c.Pos(), "malformed //mithra:owns: want //mithra:owns <param>")
				}
			default:
				report(c.Pos(), "unknown //mithra:%s directive (known: hotpath, coldpath, owns)", verb)
			}
		}
	}
	sort.Slice(ix.cold, func(i, j int) bool {
		if ix.cold[i].file != ix.cold[j].file {
			return ix.cold[i].file < ix.cold[j].file
		}
		return ix.cold[i].start < ix.cold[j].start
	})
}

// trailingComment reports whether c shares its line with code (a trailing
// comment covers its own line; a standalone one covers the statement
// below).
func trailingComment(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	line := fset.Position(c.Pos()).Line
	col := fset.Position(c.Pos()).Column
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || found {
			return false
		}
		if _, isFile := n.(*ast.File); !isFile {
			p := fset.Position(n.Pos())
			if p.Line == line && p.Column < col {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// funcDisplayName renders a FuncDecl's name with its receiver type, e.g.
// "(*Hasher).HashIndexed".
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	star := ""
	if s, ok := t.(*ast.StarExpr); ok {
		t = s.X
		star = "*"
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return "(" + star + id.Name + ")." + fd.Name.Name
	}
	return fd.Name.Name
}

// ScanHotpaths builds a HotpathIndex for every package matching the
// patterns under root, on syntax alone (no type checking) — the escape
// gate's view of the annotation contract. Malformed annotations are
// ignored here; the hotpathalloc analyzer owns reporting them.
func ScanHotpaths(root string, patterns []string) (*HotpathIndex, error) {
	dirSet := map[string]bool{}
	for _, pat := range patterns {
		dirs, err := expandPattern(root, pat)
		if err != nil {
			return nil, err
		}
		for _, d := range dirs {
			dirSet[d] = true
		}
	}
	dirs := make([]string, 0, len(dirSet))
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)

	ix := &HotpathIndex{}
	fset := token.NewFileSet()
	for _, dir := range dirs {
		names, err := goSourceNames(dir)
		if err != nil {
			return nil, err
		}
		for _, n := range names {
			f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			collectHotpaths(fset, f, ix, nil)
		}
	}
	sort.Slice(ix.Funcs, func(i, j int) bool {
		if ix.Funcs[i].File != ix.Funcs[j].File {
			return ix.Funcs[i].File < ix.Funcs[j].File
		}
		return ix.Funcs[i].StartLine < ix.Funcs[j].StartLine
	})
	return ix, nil
}
