package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatReduceAnalyzer forbids scheduling-dependent floating-point
// reduction inside parallel task closures. Floating-point addition and
// multiplication are not associative, so accumulating across tasks — into
// a captured sum or into ForEachWorker's per-worker state, whose task set
// is assigned dynamically — yields a result that depends on goroutine
// scheduling even when every individual operation is race-free. The
// engine's contract is: each task writes its contribution into an
// order-indexed slot, and the fold over slots runs serially in index
// order after the pool drains (see internal/core's evaluateWith for the
// canonical shape).
//
// Accumulation into closure-local variables (per-task scratch) and into
// slots indexed by the task index (sums[i] += v inside task i's own data)
// is deterministic and accepted.
var FloatReduceAnalyzer = &Analyzer{
	Name: "floatreduce",
	Doc: `forbid scheduling-dependent float accumulation in parallel closures

Flags += / -= / *= / /= (and ++/--) on float variables inside closures
passed to parallel.ForEach/Map/ForEachWorker when the target is captured
state or the per-worker state parameter. Float reduction must happen
serially, in index order, over the per-task slots.`,
	Run: runFloatReduce,
}

// reduceOps are the compound assignments whose result depends on
// accumulation order under floating point.
var reduceOps = map[token.Token]bool{
	token.ADD_ASSIGN: true,
	token.SUB_ASSIGN: true,
	token.MUL_ASSIGN: true,
	token.QUO_ASSIGN: true,
}

func runFloatReduce(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := parallelCall(pass.TypesInfo, call)
			if !ok || len(call.Args) == 0 {
				return true
			}
			lit, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
			if !ok {
				return true
			}
			checkFloatReduce(pass, fn, lit)
			return true
		})
	}
	return nil
}

func checkFloatReduce(pass *Pass, fn string, lit *ast.FuncLit) {
	params := closureParams(pass.TypesInfo, lit)
	var idx, state types.Object
	if len(params) > 0 {
		idx = params[len(params)-1]
	}
	if fn == "ForEachWorker" && len(params) >= 2 {
		state = params[0]
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			if reduceOps[v.Tok] && len(v.Lhs) == 1 {
				checkAccumTarget(pass, lit, idx, state, v.Lhs[0])
			}
		case *ast.IncDecStmt:
			checkAccumTarget(pass, lit, idx, state, v.X)
		}
		return true
	})
}

// checkAccumTarget reports an accumulation whose target's value depends on
// which tasks reached it in which order: captured floats and per-worker
// state floats, unless the target is a slot indexed by the task index.
func checkAccumTarget(pass *Pass, lit *ast.FuncLit, idx, state types.Object, lhs ast.Expr) {
	if !isFloat(pass.TypesInfo.TypeOf(lhs)) {
		return
	}
	root := rootIdent(lhs)
	if root == nil {
		return
	}
	obj := pass.TypesInfo.Uses[root]
	if obj == nil {
		return
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return
	}
	if indexedByObj(pass.TypesInfo, lhs, idx) {
		return
	}
	switch {
	case obj == state:
		pass.Reportf(lhs.Pos(), "float accumulation into per-worker state %s depends on the dynamic task-to-worker assignment; accumulate into an order-indexed slot and reduce serially after the pool drains", obj.Name())
	case !declaredWithin(obj, lit):
		pass.Reportf(lhs.Pos(), "float accumulation into captured %s inside a parallel closure depends on goroutine scheduling; accumulate into an order-indexed slot and reduce serially after the pool drains", obj.Name())
	}
}
