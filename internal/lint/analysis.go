// Package lint is a self-contained static-analysis suite that mechanically
// enforces the determinism and parallel-safety invariants the pipeline's
// statistical guarantees rest on (DESIGN.md §8). Algorithm 1's
// Clopper-Pearson threshold tuning is only meaningful if every evaluation
// is reproducible, and internal/parallel promises bit-identical results at
// any worker count — promises that rot silently unless a machine checks
// them on every change.
//
// The package mirrors the golang.org/x/tools/go/analysis vocabulary
// (Analyzer, Pass, Diagnostic) on the standard library alone, so the
// module stays dependency-free: packages are parsed with go/parser and
// type-checked with go/types through the stdlib source importer, and
// fixtures are exercised by an analysistest-style "// want" runner in the
// package's tests. cmd/mithralint is the multichecker binary; it runs the
// suite standalone (`go run ./cmd/mithralint ./...`) or as a vet tool
// (`go vet -vettool=bin/mithralint ./...`).
//
// Eight analyzers ship today. Four freeze the measurement pipeline's
// determinism:
//
//   - nondeterminism: no process-global entropy (math/rand top-level
//     functions, time.Now/Since/Until, os.Getpid-style identifiers) in the
//     measurement packages; randomness must come from mathx.RNG streams
//     seeded by task identity (parallel.Seed).
//   - maporder: no map iteration whose body lets Go's randomized map order
//     leak into ordered output, slice order, or parallel fan-out.
//   - parallelcapture: closures handed to parallel.ForEach/Map/
//     ForEachWorker may write captured state only through the blessed
//     order-indexed-slot pattern.
//   - floatreduce: no floating-point accumulation (+=, *=, ...) onto
//     shared or per-worker state inside those closures, where the sum
//     would depend on goroutine scheduling.
//
// Four more freeze the serving stack's runtime invariants (DESIGN.md §13):
//
//   - poolownership: every getBuf/getReq acquisition in internal/serve is
//     released, returned, or transferred on every control-flow path; no
//     alias is used after its release; nothing foreign is put.
//   - hotpathalloc: functions annotated //mithra:hotpath contain no
//     allocating constructs the AST can see; the companion escape gate
//     (mithralint -escapes) holds the same regions against the compiler's
//     -gcflags=-m heap-escape diagnostics.
//   - durablewrite: file writes in internal/{serve,fault} follow the
//     temp -> fsync -> rename -> dir-sync discipline or use O_APPEND logs.
//   - atomicswap: atomic.Pointer publication stays inside the owning
//     type's methods, and breaker-style state machines transition only
//     through transitionLocked, never on wall-clock time.
//
// A finding can be waived with an explained suppression comment on the
// flagged line or the line above:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The reason is mandatory; an unexplained or malformed directive is itself
// a diagnostic, so waivers stay auditable.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one invariant check. It is the stdlib-only
// counterpart of golang.org/x/tools/go/analysis.Analyzer: Run inspects a
// single type-checked package through its Pass and reports findings via
// Pass.Report.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:ignore
	// directives. It must be a single lower-case word.
	Name string

	// Doc is the one-paragraph description shown by `mithralint -help`.
	Doc string

	// Run performs the analysis. It must be deterministic: no map
	// iteration may influence reporting order (the driver sorts
	// diagnostics, but messages and positions must be pure functions of
	// the package under analysis).
	Run func(*Pass) error
}

// A Pass connects an Analyzer to one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // sorted by file name; test files excluded
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one finding. The driver attaches the analyzer name,
	// resolves the position, and later applies //lint:ignore suppression.
	Report func(Diagnostic)
}

// Reportf reports a finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding. Analyzer and Position are filled in by the
// driver; analyzers only set Pos and Message.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Position token.Position
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Position, d.Message, d.Analyzer)
}

// Analyzers returns the full suite in its canonical order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NondeterminismAnalyzer,
		MapOrderAnalyzer,
		ParallelCaptureAnalyzer,
		FloatReduceAnalyzer,
		PoolOwnershipAnalyzer,
		HotpathAllocAnalyzer,
		DurableWriteAnalyzer,
		AtomicSwapAnalyzer,
	}
}

// knownNames renders the suite's analyzer names for error messages.
func knownNames() string {
	names := make([]string, 0, 8)
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ", ")
}

// byName resolves an analyzer name (for //lint:ignore validation).
func byName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
