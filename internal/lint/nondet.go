package lint

import (
	"go/ast"
)

// NondeterminismAnalyzer flags process-global entropy sources in the
// measurement packages. Every random draw in the pipeline must be a pure
// function of the experiment seed and the task's stable identity
// (mathx.NewRNG + RNG.Split, seeded via parallel.Seed); the process-global
// math/rand generator, wall-clock reads, and process identifiers all
// smuggle scheduling or environment state into results that the
// Clopper-Pearson analysis assumes are reproducible draws.
var NondeterminismAnalyzer = &Analyzer{
	Name: "nondeterminism",
	Doc: `forbid process-global entropy in the measurement packages

Flags math/rand's top-level convenience functions (the shared global
generator), time.Now/Since/Until, and os.Getpid-style process identifiers
inside ` + nondetScopeDoc + `. Seeded
generators (rand.New) are allowed but mathx.RNG is the house source:
derive per-task streams with mathx.NewRNG(parallel.Seed(root, key)).`,
	Run: runNondeterminism,
}

// nondetScope lists the packages under guard, by final import-path
// element: the statistical core and everything that feeds it. cmd/ and the
// examples may read the clock (progress reporting); these packages must
// not.
var nondetScope = map[string]bool{
	"core":        true,
	"threshold":   true,
	"classifier":  true,
	"nn":          true,
	"npu":         true,
	"stats":       true,
	"experiments": true,
	"trace":       true,
	// obs is the observability layer: its telemetry never feeds results,
	// but keeping it in scope forces every wall-clock read through the
	// single audited obs.Clock chokepoint instead of scattered time.Now
	// calls.
	"obs": true,
	// serve is the online decision runtime: served decisions must be
	// byte-identical to offline replay, so batching and sampling may not
	// consult the clock (latency measurement belongs to clients).
	"serve": true,
	// fault is the chaos-injection framework: an injected fault schedule
	// must replay identically from its plan seed, so the injectors may
	// not draw entropy from anywhere but their seeded streams.
	"fault": true,
	// watch is the guarantee observability subsystem: every window,
	// dwell, and threshold it reports is measured in request counts, and
	// its journal notes must be byte-identical across worker counts — so
	// it may never consult the clock or unseeded entropy.
	"watch": true,
	// cluster is the multi-node serving layer: ring placement, request
	// routing, and fold-in replication ordering must be pure functions of
	// the spec (seed, node set, versions) so a cluster run's merged digest
	// is byte-identical to the single-node replay. Retry pacing may sleep,
	// but nothing may read the clock or unseeded entropy.
	"cluster": true,
}

const nondetScopeDoc = "internal/{core,threshold,classifier,nn,npu,stats,experiments,trace,obs,serve,fault,watch,cluster}"

// globalRandFuncs are the math/rand (and rand/v2) top-level functions that
// draw from the process-global generator. Constructors (New, NewSource,
// NewZipf, NewPCG, NewChaCha8) and types are deliberately absent: a seeded
// private generator is fine, the shared one is not.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "IntN": true, "Int31": true, "Int31n": true,
	"Int32": true, "Int32N": true, "Int63": true, "Int63n": true,
	"Int64": true, "Int64N": true, "N": true,
	"Uint": true, "UintN": true, "Uint32": true, "Uint32N": true,
	"Uint64": true, "Uint64N": true,
	"Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

// wallClockFuncs are the time package reads that tie a result to when it
// ran.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// processIdentityFuncs are os functions whose value differs per process or
// host — classic accidental entropy (seed := os.Getpid()).
var processIdentityFuncs = map[string]bool{"Getpid": true, "Getppid": true, "Hostname": true}

func runNondeterminism(pass *Pass) error {
	if pass.Pkg == nil || !nondetScope[pathBase(pass.Pkg.Path())] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pn := pkgNameOf(pass.TypesInfo, sel.X)
			if pn == nil {
				return true
			}
			name := sel.Sel.Name
			switch pn.Imported().Path() {
			case "math/rand", "math/rand/v2":
				if globalRandFuncs[name] {
					pass.Reportf(sel.Pos(), "rand.%s draws from the process-global generator; derive a per-task stream with mathx.NewRNG(parallel.Seed(root, key)) instead", name)
				}
			case "time":
				if wallClockFuncs[name] {
					pass.Reportf(sel.Pos(), "time.%s injects wall-clock state into a measurement package; results must be pure functions of the inputs and seed", name)
				}
			case "os":
				if processIdentityFuncs[name] {
					pass.Reportf(sel.Pos(), "os.%s is per-process entropy; seeds must come from the experiment configuration, not the environment", name)
				}
			}
			return true
		})
	}
	return nil
}
