package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// Canned `go build -gcflags=-m` output: package headers, inlining notes,
// non-escaping parameters, and the two heap-move diagnostic shapes.
const cannedEscapeOutput = `# mithra/internal/serve
internal/serve/pool.go:30:6: can inline getBuf
internal/serve/wire.go:88:22: b does not escape
internal/serve/wire.go:102:14: &FrameTooLargeError{...} escapes to heap
internal/serve/pool.go:75:24: b[:0] escapes to heap
internal/serve/server.go:40:2: moved to heap: req
# mithra/internal/misr
internal/misr/misr.go:10:6: can inline Hash
not a diagnostic line at all
internal/serve/broken.go:xx:3: z escapes to heap
`

func TestParseEscapes(t *testing.T) {
	escapes := ParseEscapes(cannedEscapeOutput)
	want := []Escape{
		{File: "internal/serve/pool.go", Line: 75, Col: 24, Message: "b[:0] escapes to heap"},
		{File: "internal/serve/server.go", Line: 40, Col: 2, Message: "moved to heap: req"},
		{File: "internal/serve/wire.go", Line: 102, Col: 14, Message: "&FrameTooLargeError{...} escapes to heap"},
	}
	if len(escapes) != len(want) {
		t.Fatalf("want %d escapes, got %d: %v", len(want), len(escapes), escapes)
	}
	for i := range want {
		if escapes[i] != want[i] {
			t.Errorf("escape %d: want %+v, got %+v", i, want[i], escapes[i])
		}
	}
}

func TestParseEscapesIgnoresNoise(t *testing.T) {
	for _, line := range []string{
		"# mithra/internal/serve",
		"internal/serve/pool.go:30:6: can inline getBuf",
		"internal/serve/wire.go:88:22: b does not escape",
		"internal/serve/broken.go:xx:3: z escapes to heap",
		"no file prefix: escapes to heap",
		"",
	} {
		if got := ParseEscapes(line); len(got) != 0 {
			t.Errorf("line %q produced escapes %v", line, got)
		}
	}
}

func TestGateEscapes(t *testing.T) {
	root := filepath.FromSlash("/mod")
	abs := func(rel string) string { return filepath.Join(root, filepath.FromSlash(rel)) }
	ix := &HotpathIndex{
		Funcs: []HotpathFunc{
			{Name: "(*Hasher).Hash", File: abs("internal/serve/hot.go"), StartLine: 10, EndLine: 30},
		},
		cold: []coldRange{
			{file: abs("internal/serve/hot.go"), start: 20, end: 22},
		},
	}
	escapes := []Escape{
		// Inside the hotpath, no waiver: a violation.
		{File: "internal/serve/hot.go", Line: 15, Col: 3, Message: "moved to heap: x"},
		// Inside the hotpath but on a waived line: allowed.
		{File: "internal/serve/hot.go", Line: 21, Col: 3, Message: "y escapes to heap"},
		// Outside any annotated range: not the gate's business.
		{File: "internal/serve/hot.go", Line: 99, Col: 3, Message: "z escapes to heap"},
		{File: "internal/serve/other.go", Line: 15, Col: 3, Message: "w escapes to heap"},
	}
	problems := GateEscapes(root, ix, escapes)
	if len(problems) != 1 {
		t.Fatalf("want exactly one problem, got %d: %v", len(problems), problems)
	}
	for _, frag := range []string{"(*Hasher).Hash", "moved to heap: x", "//mithra:coldpath"} {
		if !strings.Contains(problems[0], frag) {
			t.Errorf("problem %q missing %q", problems[0], frag)
		}
	}
}

// TestHotpathEscapeGate runs the real compiler gate over the module: the
// annotated decide path must stay escape-clean. This is the same check CI
// runs via `mithralint -escapes ./...`.
func TestHotpathEscapeGate(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the module with -gcflags=-m; skipped in -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	problems, err := CheckEscapes(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Errorf("escape gate: %s", p)
	}
}
