package lint

import (
	"path/filepath"
	"testing"
)

// Each fixture demonstrates at least one true positive (the diagnostic
// fires on a bad pattern) and one true negative (the blessed pattern stays
// clean); see the fixture files for the catalogue.

func TestNondeterminismFixtures(t *testing.T) {
	// "core" ends in a scoped package name; "outside" proves the scope
	// boundary (same calls, no findings).
	runFixture(t, "core", NondeterminismAnalyzer)
	runFixture(t, "outside", NondeterminismAnalyzer)
}

func TestMapOrderFixtures(t *testing.T) {
	runFixture(t, "maporder", MapOrderAnalyzer)
}

func TestParallelCaptureFixtures(t *testing.T) {
	runFixture(t, "parallelcapture", ParallelCaptureAnalyzer)
}

func TestFloatReduceFixtures(t *testing.T) {
	runFixture(t, "floatreduce", FloatReduceAnalyzer)
}

func TestIgnoreDirectives(t *testing.T) {
	// Suppression is driver-level, so any analyzer exercises it; maporder
	// has the most convenient single-line findings.
	runFixture(t, "ignore", MapOrderAnalyzer)
}

func TestPoolOwnershipFixtures(t *testing.T) {
	runFixture(t, filepath.Join("poolown", "serve"), PoolOwnershipAnalyzer)
}

func TestHotpathAllocFixtures(t *testing.T) {
	runFixture(t, "hotpath", HotpathAllocAnalyzer)
}

func TestDurableWriteFixtures(t *testing.T) {
	runFixture(t, filepath.Join("durable", "fault"), DurableWriteAnalyzer)
}

func TestAtomicSwapFixtures(t *testing.T) {
	runFixture(t, filepath.Join("atomics", "serve"), AtomicSwapAnalyzer)
}

// TestRepoIsClean runs the full suite over the module itself: the tree
// must stay free of determinism findings, and every package must
// type-check. This is the same gate CI applies via cmd/mithralint.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("Load found no packages")
	}
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			t.Errorf("%s: type error: %v", p.Path, e)
		}
	}
	diags, err := Run(pkgs, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("finding on the tree: %s", d)
	}
}
