package lint

import (
	"fmt"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// collectDiags parses src and runs collectHotpaths, returning the
// malformed-annotation diagnostics and the resulting index.
func collectDiags(t *testing.T, src string) ([]string, *HotpathIndex) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "anno.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse fixture source: %v", err)
	}
	var diags []string
	ix := &HotpathIndex{}
	collectHotpaths(fset, f, ix, func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		diags = append(diags, p.String()+": "+fmt.Sprintf(format, args...))
	})
	return diags, ix
}

// TestCollectHotpathDiagnostics covers the malformed forms whose
// diagnostic lands on a bare comment line, where the // want fixture
// machinery cannot carry an expectation.
func TestCollectHotpathDiagnostics(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of exactly one diagnostic; "" means none
	}{
		{
			name: "coldpath without reason",
			src: `package p
func f() {
	//mithra:coldpath
	_ = make([]byte, 1)
}
`,
			want: "//mithra:coldpath has no reason",
		},
		{
			name: "hotpath on a non-doc comment",
			src: `package p
//mithra:hotpath

var x int
`,
			want: "misplaced //mithra:hotpath",
		},
		{
			name: "hotpath inside a body",
			src: `package p
func f() {
	//mithra:hotpath
	_ = 1
}
`,
			want: "misplaced //mithra:hotpath",
		},
		{
			name: "owns without a parameter",
			src: `package p
//mithra:owns
func f(b []byte) { _ = b }
`,
			want: "malformed //mithra:owns",
		},
		{
			name: "well-formed hotpath is silent",
			src: `package p
//mithra:hotpath
func f() {}
`,
			want: "",
		},
		{
			name: "well-formed coldpath is silent",
			src: `package p
func f() {
	_ = make([]byte, 1) //mithra:coldpath grow once
}
`,
			want: "",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diags, _ := collectDiags(t, tc.src)
			if tc.want == "" {
				if len(diags) != 0 {
					t.Fatalf("unexpected diagnostics: %v", diags)
				}
				return
			}
			if len(diags) != 1 || !strings.Contains(diags[0], tc.want) {
				t.Fatalf("want one diagnostic containing %q, got %v", tc.want, diags)
			}
		})
	}
}

// TestHotpathIndexRanges checks the two coldpath placements: a trailing
// comment covers its own line, a standalone comment covers the entire
// statement that starts on the next line.
func TestHotpathIndexRanges(t *testing.T) {
	src := `package p

//mithra:hotpath
func f(n int) []byte {
	if n > 0 {
		return make([]byte, n) //mithra:coldpath oversized
	}
	//mithra:coldpath grow block
	if n == 0 {
		n = 1
		n = 2
	}
	return nil
}
`
	diags, ix := collectDiags(t, src)
	if len(diags) != 0 {
		t.Fatalf("unexpected diagnostics: %v", diags)
	}
	if len(ix.Funcs) != 1 || ix.Funcs[0].Name != "f" {
		t.Fatalf("want one hotpath func f, got %+v", ix.Funcs)
	}
	hf := ix.Funcs[0]
	if _, ok := ix.InHotpath("anno.go", hf.StartLine+1); !ok {
		t.Fatalf("line inside f not reported as hotpath")
	}
	if _, ok := ix.InHotpath("anno.go", hf.EndLine+5); ok {
		t.Fatalf("line after f reported as hotpath")
	}
	// Trailing waiver: line 6 only.
	if !ix.Cold("anno.go", 6) {
		t.Errorf("trailing coldpath does not cover its own line")
	}
	if ix.Cold("anno.go", 5) || ix.Cold("anno.go", 7) {
		t.Errorf("trailing coldpath leaked beyond its line")
	}
	// Standalone waiver on line 8: covers the whole if block, lines 9-12.
	for line := 9; line <= 12; line++ {
		if !ix.Cold("anno.go", line) {
			t.Errorf("standalone coldpath does not cover line %d of the statement below", line)
		}
	}
	if ix.Cold("anno.go", 13) {
		t.Errorf("standalone coldpath leaked past the statement it covers")
	}
}
