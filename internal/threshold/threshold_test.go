package threshold

import (
	"math"
	"testing"

	"mithra/internal/axbench"
	"mithra/internal/mathx"
	"mithra/internal/nn"
	"mithra/internal/npu"
	"mithra/internal/quality"
	"mithra/internal/stats"
	"mithra/internal/trace"
)

// stubBench is a minimal benchmark whose application output is exactly the
// per-invocation kernel outputs, giving the tests full control over the
// quality-vs-threshold relationship through hand-crafted traces.
type stubBench struct{ n int }

func (s *stubBench) Name() string           { return "stub" }
func (s *stubBench) Domain() string         { return "Testing" }
func (s *stubBench) InputDim() int          { return 1 }
func (s *stubBench) OutputDim() int         { return 1 }
func (s *stubBench) Topology() []int        { return []int{1, 2, 1} }
func (s *stubBench) Metric() quality.Metric { return quality.AvgRelativeError{} }
func (s *stubBench) Profile() axbench.Profile {
	return axbench.Profile{KernelCycles: 100, KernelFraction: 0.5}
}
func (s *stubBench) Precise(in, out []float64) { out[0] = in[0] }

type stubInput struct{ n int }

func (si *stubInput) Invocations() int { return si.n }

func (s *stubBench) GenInput(rng *mathx.RNG, scale axbench.Scale) axbench.Input {
	return &stubInput{n: s.n}
}

func (s *stubBench) Run(in axbench.Input, invoke axbench.Invoker) []float64 {
	n := in.(*stubInput).n
	out := make([]float64, n)
	kin := []float64{0}
	kout := []float64{0}
	for i := 0; i < n; i++ {
		kin[0] = 1 // reference value 1 everywhere
		invoke(kin, kout)
		out[i] = kout[0]
	}
	return out
}

// craftedDataset builds a trace where invocation i has accelerator error
// errs[i] against a precise value of 1.
func craftedDataset(errs []float64) Dataset {
	n := len(errs)
	tr := &trace.Trace{
		N: n, InDim: 1, OutDim: 1,
		Precise: make([]float64, n),
		Approx:  make([]float64, n),
		MaxErr:  append([]float64(nil), errs...),
	}
	for i := range errs {
		tr.Precise[i] = 1
		tr.Approx[i] = 1 + errs[i]
	}
	tr.PreciseOut = make([]float64, n)
	tr.ApproxOut = make([]float64, n)
	for i := range errs {
		tr.PreciseOut[i] = 1
		tr.ApproxOut[i] = 1 + errs[i]
	}
	return Dataset{In: &stubInput{n: n}, Tr: tr}
}

// uniformErrDatasets builds k datasets whose invocation errors are spread
// uniformly over [0, 0.2]: replaying at threshold th keeps exactly the
// errors <= th, so mean quality = analytically known function of th.
func uniformErrDatasets(k, n int, seed uint64) []Dataset {
	rng := mathx.NewRNG(seed)
	ds := make([]Dataset, k)
	for i := range ds {
		errs := make([]float64, n)
		for j := range errs {
			errs[j] = rng.Range(0, 0.2)
		}
		ds[i] = craftedDataset(errs)
	}
	return ds
}

func testGuarantee() stats.Guarantee {
	return stats.Guarantee{QualityLoss: 0.05, SuccessRate: 0.7, Confidence: 0.9}
}

func TestValidation(t *testing.T) {
	b := &stubBench{n: 10}
	g := testGuarantee()
	if _, err := FindBisect(b, nil, g, DefaultOptions()); err == nil {
		t.Error("no datasets should error")
	}
	bad := g
	bad.SuccessRate = 0
	if _, err := FindBisect(b, uniformErrDatasets(5, 10, 1), bad, DefaultOptions()); err == nil {
		t.Error("invalid guarantee should error")
	}
	// Too few datasets to certify 99.9% success.
	strict := stats.Guarantee{QualityLoss: 0.05, SuccessRate: 0.999, Confidence: 0.95}
	if _, err := FindBisect(b, uniformErrDatasets(5, 10, 1), strict, DefaultOptions()); err == nil {
		t.Error("uncertifiable sample size should error")
	}
}

func TestBisectFindsBoundary(t *testing.T) {
	b := &stubBench{n: 200}
	ds := uniformErrDatasets(30, 200, 2)
	g := testGuarantee()
	res, err := FindBisect(b, ds, g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Certified {
		t.Fatal("boundary search should certify")
	}
	// Analytics: with errors uniform on [0, 0.2] against reference 1,
	// quality(th) = mean of kept errors = integral: for th <= 0.2,
	// kept fraction th/0.2, mean error of kept = th/2, so
	// quality = (th/0.2)*(th/2)/1... actually per-element error of a
	// filtered invocation is 0, so quality = E[err * 1(err<=th)]
	// = (th/0.2) * th/2. Setting = 0.05 -> th^2 = 0.02 -> th = 0.1414.
	want := math.Sqrt(0.02)
	if math.Abs(res.Threshold-want) > 0.02 {
		t.Errorf("threshold = %v, want ~%v", res.Threshold, want)
	}
	// The certified threshold's qualities must meet the target for the
	// counted successes.
	if res.Successes < g.RequiredSuccesses(res.Trials) {
		t.Errorf("successes %d below required", res.Successes)
	}
	if res.LowerBound < g.SuccessRate {
		t.Errorf("lower bound %v below target", res.LowerBound)
	}
	// Invocation rate at th=0.1414 over uniform [0,0.2] errors ~ 70%.
	if math.Abs(res.InvocationRate-want/0.2) > 0.05 {
		t.Errorf("invocation rate = %v, want ~%v", res.InvocationRate, want/0.2)
	}
}

func TestDeltaWalkAgreesWithBisect(t *testing.T) {
	b := &stubBench{n: 150}
	ds := uniformErrDatasets(25, 150, 3)
	g := testGuarantee()
	opts := DefaultOptions()
	opts.DeltaFrac = 0.01
	walk, err := FindDeltaWalk(b, ds, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	bis, err := FindBisect(b, ds, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !walk.Certified || !bis.Certified {
		t.Fatal("both searches should certify")
	}
	// Same operating point within one delta step.
	if math.Abs(walk.Threshold-bis.Threshold) > 0.02*0.2+0.002 {
		t.Errorf("delta-walk %v vs bisect %v", walk.Threshold, bis.Threshold)
	}
	// Bisection should use far fewer instrumented evaluations than the
	// walk needs steps for the same resolution.
	if bis.Iterations > walk.Iterations*3 {
		t.Errorf("bisect used %d evals vs walk %d", bis.Iterations, walk.Iterations)
	}
}

func TestFullApproxCertifies(t *testing.T) {
	// Tiny errors everywhere: even always-approximate meets 5%.
	b := &stubBench{n: 50}
	ds := make([]Dataset, 20)
	rng := mathx.NewRNG(4)
	for i := range ds {
		errs := make([]float64, 50)
		for j := range errs {
			errs[j] = rng.Range(0, 0.01)
		}
		ds[i] = craftedDataset(errs)
	}
	g := testGuarantee()
	for _, find := range []func(axbench.Benchmark, []Dataset, stats.Guarantee, Options) (Result, error){FindDeltaWalk, FindBisect} {
		res, err := find(b, ds, g, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Certified {
			t.Error("should certify")
		}
		if res.InvocationRate < 0.999 {
			t.Errorf("invocation rate = %v, want 1 (threshold loose enough for full approx)", res.InvocationRate)
		}
	}
}

func TestZeroErrorAccelerator(t *testing.T) {
	b := &stubBench{n: 20}
	ds := []Dataset{craftedDataset(make([]float64, 20))}
	// One dataset cannot certify 70% at 90% confidence? lower bound for
	// 1/1 at 0.9 = 0.1; so use a permissive guarantee.
	g := stats.Guarantee{QualityLoss: 0.05, SuccessRate: 0.05, Confidence: 0.9}
	res, err := FindBisect(b, ds, g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Certified {
		t.Error("exact accelerator should certify trivially")
	}
}

func TestUncertifiableQuality(t *testing.T) {
	// Huge errors on every invocation and a strict target: even
	// threshold 0 keeps quality at 0 (all precise), which certifies; but
	// a target of 0 quality loss with any approximation... threshold 0
	// means everything falls back, so quality = 0 <= 0 and it still
	// certifies. The truly uncertifiable case needs quality > target even
	// all-precise, which cannot happen by construction. So assert the
	// tight-threshold behaviour instead: huge errors force th near 0 and
	// invocation rate near 0.
	b := &stubBench{n: 100}
	rng := mathx.NewRNG(5)
	ds := make([]Dataset, 20)
	for i := range ds {
		errs := make([]float64, 100)
		for j := range errs {
			errs[j] = rng.Range(0.5, 1.0)
		}
		ds[i] = craftedDataset(errs)
	}
	g := testGuarantee()
	res, err := FindBisect(b, ds, g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Certified {
		t.Error("tight threshold should certify")
	}
	if res.InvocationRate > 0.12 {
		t.Errorf("invocation rate %v should be near zero for uniformly bad accelerator", res.InvocationRate)
	}
}

func TestResultQualitiesConsistent(t *testing.T) {
	b := &stubBench{n: 100}
	ds := uniformErrDatasets(15, 100, 6)
	g := testGuarantee()
	res, err := FindBisect(b, ds, g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Qualities) != len(ds) {
		t.Fatalf("qualities length %d", len(res.Qualities))
	}
	n := 0
	for _, q := range res.Qualities {
		if q <= g.QualityLoss {
			n++
		}
	}
	if n != res.Successes {
		t.Errorf("successes %d but %d qualities meet the target", res.Successes, n)
	}
}

// TestIntegrationRealBenchmark exercises the full pipeline on a real
// benchmark with a real NPU: capture, search, certify.
func TestIntegrationRealBenchmark(t *testing.T) {
	b, err := axbench.New("inversek2j")
	if err != nil {
		t.Fatal(err)
	}
	// Train a quick NPU.
	gen := b.GenInput(mathx.NewRNG(50), axbench.TestScale())
	var samples []nn.Sample
	b.Run(gen, func(kin, kout []float64) {
		b.Precise(kin, kout)
		if len(samples) < 500 {
			samples = append(samples, nn.Sample{
				In:  append([]float64(nil), kin...),
				Out: append([]float64(nil), kout...),
			})
		}
	})
	approx, _ := nn.FitApproximator(b.Topology(), samples,
		nn.TrainConfig{Epochs: 40, LearningRate: 0.2, Momentum: 0.9, BatchSize: 16, Seed: 1}, 3)
	acc := npu.New(approx)

	const nDatasets = 25
	ds := make([]Dataset, nDatasets)
	rng := mathx.NewRNG(60)
	for i := range ds {
		in := b.GenInput(rng.Split(uint64(i)), axbench.TestScale())
		ds[i] = Dataset{In: in, Tr: trace.Capture(b, in, acc, trace.Options{})}
	}
	g := stats.Guarantee{QualityLoss: 0.05, SuccessRate: 0.7, Confidence: 0.9}
	res, err := FindBisect(b, ds, g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Certified {
		t.Fatalf("real benchmark failed to certify: %+v", res)
	}
	if res.Threshold < 0 {
		t.Errorf("negative threshold %v", res.Threshold)
	}
	if res.InvocationRate <= 0 || res.InvocationRate > 1 {
		t.Errorf("invocation rate %v out of range", res.InvocationRate)
	}
}

func TestDeltaWalkIterationBudget(t *testing.T) {
	// A microscopic delta with a tiny iteration budget must still return
	// the best certified threshold seen rather than failing.
	b := &stubBench{n: 100}
	ds := uniformErrDatasets(15, 100, 7)
	opts := DefaultOptions()
	opts.MaxIter = 3
	opts.DeltaFrac = 1e-4
	res, err := FindDeltaWalk(b, ds, testGuarantee(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Certified {
		t.Errorf("budget-limited walk should still certify: %+v", res)
	}
	if res.Iterations > 10 {
		t.Errorf("iterations %d exceeded budget accounting", res.Iterations)
	}
}

func TestResultFieldsAtBoundary(t *testing.T) {
	b := &stubBench{n: 100}
	ds := uniformErrDatasets(15, 100, 8)
	res, err := FindBisect(b, ds, testGuarantee(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 15 || len(res.Qualities) != 15 {
		t.Errorf("trials/qualities: %d/%d", res.Trials, len(res.Qualities))
	}
	if res.LowerBound <= 0 || res.LowerBound >= 1 {
		t.Errorf("lower bound %v", res.LowerBound)
	}
}
