package threshold

import (
	"fmt"

	"mithra/internal/stats"
)

// This file implements the paper's multi-function extension (§III-A): "If
// the application offloads multiple functions to the accelerator, this
// algorithm can be extended to greedily find a tuple of thresholds."
// Each offloaded function gets its own error threshold; the greedy search
// tunes them one function at a time while the already-tuned functions
// keep their thresholds and the not-yet-tuned functions run precisely.
// As the paper notes, the greedy approach can be suboptimal when many
// functions are offloaded — the tests demonstrate the order dependence.

// MultiEvaluator abstracts a program with several offloaded functions.
// Implementations are typically backed by per-kernel traces captured the
// same way single-kernel programs are.
type MultiEvaluator interface {
	// NumKernels returns how many functions are offloaded.
	NumKernels() int
	// NumDatasets returns the representative dataset count.
	NumDatasets() int
	// Quality returns the final output quality loss of dataset d when
	// kernel k's invocations fall back exactly when their accelerator
	// error exceeds ths[k]. A threshold of 0 pins a kernel precise.
	Quality(d int, ths []float64) float64
	// MaxError returns the largest accelerator error observed for kernel
	// k across all datasets (the search range's upper end).
	MaxError(k int) float64
	// InvocationRate returns kernel k's accelerator invocation rate at
	// threshold th, averaged over datasets.
	InvocationRate(k int, th float64) float64
}

// TupleResult reports a tuned threshold tuple.
type TupleResult struct {
	// Thresholds holds one tuned threshold per kernel, in tuning order.
	Thresholds []float64
	// Successes of Trials datasets met the quality target at the tuple.
	Successes, Trials int
	// LowerBound is the certified success rate at the final tuple.
	LowerBound float64
	// Certified reports whether the guarantee holds.
	Certified bool
	// Iterations counts full-program quality evaluations.
	Iterations int
	// InvocationRates holds each kernel's rate at its tuned threshold.
	InvocationRates []float64
}

// FindGreedyTuple tunes each kernel's threshold in the given order (nil
// means 0..k-1): kernel k is bisected over [0, MaxError(k)] with kernels
// already tuned held at their thresholds and later kernels pinned
// precise. Every candidate tuple is certified with the Clopper-Pearson
// bound before acceptance.
func FindGreedyTuple(e MultiEvaluator, g stats.Guarantee, order []int, opts Options) (TupleResult, error) {
	k := e.NumKernels()
	if k == 0 {
		return TupleResult{}, fmt.Errorf("threshold: no kernels")
	}
	n := e.NumDatasets()
	if n == 0 {
		return TupleResult{}, fmt.Errorf("threshold: no datasets")
	}
	if err := g.Validate(); err != nil {
		return TupleResult{}, err
	}
	if g.RequiredSuccesses(n) > n {
		return TupleResult{}, fmt.Errorf("threshold: %d datasets cannot certify %s", n, g)
	}
	if order == nil {
		order = make([]int, k)
		for i := range order {
			order[i] = i
		}
	}
	if len(order) != k {
		return TupleResult{}, fmt.Errorf("threshold: order has %d entries for %d kernels", len(order), k)
	}
	seen := make([]bool, k)
	for _, o := range order {
		if o < 0 || o >= k || seen[o] {
			return TupleResult{}, fmt.Errorf("threshold: invalid tuning order %v", order)
		}
		seen[o] = true
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 48
	}
	if opts.Tolerance <= 0 {
		opts.Tolerance = 1e-3
	}

	res := TupleResult{
		Thresholds: make([]float64, k),
		Trials:     n,
	}
	certified := func(ths []float64) (bool, int) {
		succ := 0
		for d := 0; d < n; d++ {
			if e.Quality(d, ths) <= g.QualityLoss {
				succ++
			}
		}
		res.Iterations++
		return g.Holds(succ, n), succ
	}

	// All-precise must certify (quality loss 0 <= target); it is the
	// greedy baseline every step must preserve.
	if ok, _ := certified(res.Thresholds); !ok {
		return res, fmt.Errorf("threshold: all-precise execution does not certify %s", g)
	}

	for _, kid := range order {
		maxErr := e.MaxError(kid)
		if maxErr == 0 {
			res.Thresholds[kid] = 0
			continue
		}
		// Try the loosest setting first.
		trial := append([]float64(nil), res.Thresholds...)
		trial[kid] = maxErr
		if ok, _ := certified(trial); ok {
			res.Thresholds[kid] = maxErr
			continue
		}
		lo, hi := 0.0, maxErr // lo certifies, hi does not
		for it := 0; it < opts.MaxIter && hi-lo > opts.Tolerance*maxErr; it++ {
			mid := (lo + hi) / 2
			trial[kid] = mid
			if ok, _ := certified(trial); ok {
				lo = mid
			} else {
				hi = mid
			}
		}
		res.Thresholds[kid] = lo
	}

	ok, succ := certified(res.Thresholds)
	res.Certified = ok
	res.Successes = succ
	res.LowerBound = g.LowerBound(succ, n)
	res.InvocationRates = make([]float64, k)
	for i := 0; i < k; i++ {
		res.InvocationRates[i] = e.InvocationRate(i, res.Thresholds[i])
	}
	return res, nil
}
