package threshold

import (
	"math"
	"testing"

	"mithra/internal/mathx"
	"mithra/internal/stats"
)

// twoKernelEval models a program offloading two functions whose error
// contributions add: dataset d's quality is
// w1[d]*contrib(th1) + w2[d]*contrib(th2), where contrib is the mean
// kept-error of invocations with errors uniform on [0, maxErr].
type twoKernelEval struct {
	w1, w2           []float64
	maxErr1, maxErr2 float64
}

// contrib of a kernel with errors ~ U[0,m] at threshold th:
// E[err * 1(err<=th)] = th^2 / (2m) for th <= m.
func uniformContrib(th, m float64) float64 {
	if m == 0 {
		return 0
	}
	if th > m {
		th = m
	}
	return th * th / (2 * m)
}

func (e *twoKernelEval) NumKernels() int  { return 2 }
func (e *twoKernelEval) NumDatasets() int { return len(e.w1) }
func (e *twoKernelEval) Quality(d int, ths []float64) float64 {
	return e.w1[d]*uniformContrib(ths[0], e.maxErr1) + e.w2[d]*uniformContrib(ths[1], e.maxErr2)
}
func (e *twoKernelEval) MaxError(k int) float64 {
	if k == 0 {
		return e.maxErr1
	}
	return e.maxErr2
}
func (e *twoKernelEval) InvocationRate(k int, th float64) float64 {
	m := e.MaxError(k)
	if th >= m {
		return 1
	}
	return th / m
}

func newTwoKernelEval(n int, seed uint64) *twoKernelEval {
	rng := mathx.NewRNG(seed)
	e := &twoKernelEval{maxErr1: 0.2, maxErr2: 0.4}
	for i := 0; i < n; i++ {
		e.w1 = append(e.w1, rng.Range(0.8, 1.2))
		e.w2 = append(e.w2, rng.Range(0.8, 1.2))
	}
	return e
}

func multiGuarantee() stats.Guarantee {
	return stats.Guarantee{QualityLoss: 0.04, SuccessRate: 0.7, Confidence: 0.9}
}

func TestGreedyTupleCertifies(t *testing.T) {
	e := newTwoKernelEval(40, 1)
	res, err := FindGreedyTuple(e, multiGuarantee(), nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Certified {
		t.Fatalf("tuple not certified: %+v", res)
	}
	if res.Thresholds[0] <= 0 || res.Thresholds[1] <= 0 {
		t.Errorf("thresholds should be positive: %v", res.Thresholds)
	}
	if res.LowerBound < 0.7 {
		t.Errorf("lower bound %v", res.LowerBound)
	}
	// Kernel 1 was tuned first with kernel 2 precise, so it got the
	// lion's share of the error budget.
	c1 := uniformContrib(res.Thresholds[0], 0.2)
	c2 := uniformContrib(res.Thresholds[1], 0.4)
	if c1 <= c2 {
		t.Errorf("greedy order should favor kernel 0: contribs %v vs %v", c1, c2)
	}
	for _, r := range res.InvocationRates {
		if r < 0 || r > 1 {
			t.Errorf("invocation rate %v", r)
		}
	}
}

func TestGreedyTupleOrderDependence(t *testing.T) {
	// The paper warns the greedy approach is suboptimal; tuning order
	// shifts the budget split — but both orders must certify.
	e := newTwoKernelEval(40, 2)
	g := multiGuarantee()
	fwd, err := FindGreedyTuple(e, g, []int{0, 1}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rev, err := FindGreedyTuple(e, g, []int{1, 0}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !fwd.Certified || !rev.Certified {
		t.Fatal("both orders must certify")
	}
	if math.Abs(fwd.Thresholds[0]-rev.Thresholds[0]) < 1e-6 {
		t.Error("tuning order had no effect — greedy order dependence not exercised")
	}
	// Whoever is tuned first gets the larger share.
	if uniformContrib(rev.Thresholds[1], 0.4) <= uniformContrib(rev.Thresholds[0], 0.2) {
		t.Error("reverse order should favor kernel 1")
	}
}

func TestGreedyTupleZeroErrorKernel(t *testing.T) {
	e := newTwoKernelEval(30, 3)
	e.maxErr1 = 0 // kernel 0's accelerator is exact
	res, err := FindGreedyTuple(e, multiGuarantee(), nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Thresholds[0] != 0 {
		t.Errorf("exact kernel threshold = %v", res.Thresholds[0])
	}
	if !res.Certified {
		t.Error("should certify")
	}
}

func TestGreedyTupleLooseTarget(t *testing.T) {
	// A very loose target lets both kernels run at full threshold.
	e := newTwoKernelEval(30, 4)
	g := stats.Guarantee{QualityLoss: 0.9, SuccessRate: 0.7, Confidence: 0.9}
	res, err := FindGreedyTuple(e, g, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Thresholds[0] < e.maxErr1 || res.Thresholds[1] < e.maxErr2 {
		t.Errorf("loose target should allow max thresholds, got %v", res.Thresholds)
	}
	if res.InvocationRates[0] != 1 || res.InvocationRates[1] != 1 {
		t.Errorf("rates %v", res.InvocationRates)
	}
}

func TestGreedyTupleValidation(t *testing.T) {
	e := newTwoKernelEval(30, 5)
	g := multiGuarantee()
	if _, err := FindGreedyTuple(e, g, []int{0}, DefaultOptions()); err == nil {
		t.Error("short order should error")
	}
	if _, err := FindGreedyTuple(e, g, []int{0, 0}, DefaultOptions()); err == nil {
		t.Error("duplicate order should error")
	}
	if _, err := FindGreedyTuple(e, g, []int{0, 7}, DefaultOptions()); err == nil {
		t.Error("out-of-range order should error")
	}
	bad := g
	bad.SuccessRate = 0
	if _, err := FindGreedyTuple(e, bad, nil, DefaultOptions()); err == nil {
		t.Error("invalid guarantee should error")
	}
	empty := &twoKernelEval{}
	if _, err := FindGreedyTuple(empty, g, nil, DefaultOptions()); err == nil {
		t.Error("no datasets should error")
	}
}

func TestGreedyTupleJointQualityHolds(t *testing.T) {
	// The defining property: at the tuned tuple, the success count over
	// datasets actually meets the certified bound's requirement.
	e := newTwoKernelEval(50, 6)
	g := multiGuarantee()
	res, err := FindGreedyTuple(e, g, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	succ := 0
	for d := 0; d < e.NumDatasets(); d++ {
		if e.Quality(d, res.Thresholds) <= g.QualityLoss {
			succ++
		}
	}
	if succ != res.Successes {
		t.Errorf("recomputed successes %d != reported %d", succ, res.Successes)
	}
	if succ < g.RequiredSuccesses(e.NumDatasets()) {
		t.Errorf("successes %d below certification requirement", succ)
	}
}
