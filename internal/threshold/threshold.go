// Package threshold implements the paper's statistical optimization for
// controlling quality tradeoffs (§III-A, Algorithm 1): it converts a
// programmer-specified final output quality loss — plus a success rate and
// confidence level — into a local accelerator error threshold.
//
// For each candidate threshold the instrumented program runs every
// representative input dataset with oracle filtering (an invocation falls
// back to precise code exactly when its accelerator error exceeds the
// threshold, Equation 1), the final quality loss of each dataset is
// compared with the desired level, and the Clopper-Pearson exact method
// turns the success count into a certified lower bound on the success
// rate over unseen datasets. The optimizer finds the loosest threshold
// whose bound still meets the requested success rate — maximizing
// accelerator invocations, hence performance and energy gains.
//
// Both search strategies from DESIGN.md are provided: the paper's
// delta-walk (Algorithm 1 verbatim, with its terminate-on-crossing rule)
// and a bisection search that exploits the monotone trend of quality in
// the threshold to converge in far fewer instrumented runs. The ablation
// bench compares the two.
package threshold

import (
	"fmt"
	"math"

	"mithra/internal/axbench"
	"mithra/internal/obs"
	"mithra/internal/parallel"
	"mithra/internal/stats"
	"mithra/internal/trace"
)

// Dataset pairs one representative application input with its captured
// trace.
type Dataset struct {
	In axbench.Input
	Tr *trace.Trace
}

// Options tunes the search.
type Options struct {
	// MaxIter bounds the number of instrumented evaluations (each
	// evaluation replays every dataset once).
	MaxIter int
	// DeltaFrac is the delta-walk step as a fraction of the maximum
	// observed accelerator error (paper: "a small delta").
	DeltaFrac float64
	// Tolerance is the bisection convergence width, also as a fraction of
	// the maximum error.
	Tolerance float64
	// Workers bounds the worker pool replaying datasets inside each
	// instrumented evaluation (<= 0: GOMAXPROCS, 1: serial). Every
	// dataset's quality lands in its own slot and the success count folds
	// in dataset order, so the search trajectory is identical at every
	// setting.
	Workers int
	// Obs receives search telemetry (spans, counters). Nil disables; the
	// search result is identical either way.
	Obs *obs.Obs
}

// DefaultOptions matches the evaluation setup.
func DefaultOptions() Options {
	return Options{MaxIter: 64, DeltaFrac: 0.02, Tolerance: 1e-3}
}

// Result reports the tuned knob and the statistical evidence behind it.
type Result struct {
	// Threshold is the tuned accelerator error bound (Equation 1's th).
	Threshold float64
	// Successes of Trials compile datasets met the desired quality loss
	// at Threshold.
	Successes, Trials int
	// LowerBound is the Clopper-Pearson certified success rate.
	LowerBound float64
	// Certified reports whether the guarantee holds at Threshold. It is
	// false when even an all-precise threshold cannot certify (sample too
	// small) — the caller must then reject the compilation.
	Certified bool
	// Iterations counts instrumented evaluations performed.
	Iterations int
	// InvocationRate is the mean oracle invocation rate across datasets
	// at Threshold.
	InvocationRate float64
	// Qualities holds the final quality loss per dataset at Threshold.
	Qualities []float64
}

// evaluator memoizes instrumented evaluations at candidate thresholds.
type evaluator struct {
	b       axbench.Benchmark
	ds      []Dataset
	g       stats.Guarantee
	workers int
	cache   map[float64]evalPoint
	evals   int
	obs     *obs.Obs
	span    *obs.Span
}

type evalPoint struct {
	successes int
	qualities []float64
}

func newEvaluator(b axbench.Benchmark, ds []Dataset, g stats.Guarantee, opts Options, span *obs.Span) *evaluator {
	return &evaluator{b: b, ds: ds, g: g, workers: opts.Workers,
		cache: map[float64]evalPoint{}, obs: opts.Obs, span: span}
}

// at runs the instrumented program at threshold th over every dataset.
// Replays are independent (traces are read-only under oracle decisions),
// so they run on the worker pool; the success fold stays serial in
// dataset order.
func (e *evaluator) at(th float64) evalPoint {
	if p, ok := e.cache[th]; ok {
		return p
	}
	p := evalPoint{qualities: make([]float64, len(e.ds))}
	if err := parallel.ForEach(e.workers, len(e.ds), func(i int) error {
		d := e.ds[i]
		p.qualities[i] = d.Tr.QualityAt(e.b, d.In, d.Tr.ThresholdOracle(th))
		return nil
	}); err != nil {
		panic(err)
	}
	for _, q := range p.qualities {
		if q <= e.g.QualityLoss {
			p.successes++
		}
	}
	e.evals++
	e.obs.Counter("threshold.evaluations").Inc()
	e.cache[th] = p
	return p
}

func (e *evaluator) certified(th float64) bool {
	return e.g.Holds(e.at(th).successes, len(e.ds))
}

// maxError returns the largest accelerator error seen across datasets —
// the upper end of the threshold search range.
func maxError(ds []Dataset) float64 {
	max := 0.0
	for _, d := range ds {
		for _, e := range d.Tr.MaxErr {
			if e > max {
				max = e
			}
		}
	}
	return max
}

func validate(ds []Dataset, g stats.Guarantee) error {
	if len(ds) == 0 {
		return fmt.Errorf("threshold: no datasets")
	}
	if err := g.Validate(); err != nil {
		return err
	}
	if g.RequiredSuccesses(len(ds)) > len(ds) {
		return fmt.Errorf("threshold: %d datasets cannot certify %s (need more samples)",
			len(ds), g)
	}
	return nil
}

// finish assembles a Result at the accepted threshold and closes out the
// search telemetry (each Find* invocation reaches finish exactly once).
func (e *evaluator) finish(th float64) Result {
	p := e.at(th)
	rate := 0.0
	for _, d := range e.ds {
		rate += d.Tr.InvocationRate(d.Tr.ThresholdOracle(th))
	}
	rate /= float64(len(e.ds))
	e.obs.Counter("threshold.iterations").Add(int64(e.evals))
	e.span.SetAttr("threshold", th)
	e.span.SetAttr("iterations", e.evals)
	e.span.SetAttr("certified", e.g.Holds(p.successes, len(e.ds)))
	return Result{
		Threshold:      th,
		Successes:      p.successes,
		Trials:         len(e.ds),
		LowerBound:     e.g.LowerBound(p.successes, len(e.ds)),
		Certified:      e.g.Holds(p.successes, len(e.ds)),
		Iterations:     e.evals,
		InvocationRate: rate,
		Qualities:      p.qualities,
	}
}

// FindDeltaWalk implements Algorithm 1 as published: start from an
// initial threshold, measure the certified success rate, loosen the
// threshold by delta while the guarantee holds and tighten it while it
// does not, and terminate when consecutive thresholds straddle the
// guarantee boundary (returning the certified side).
func FindDeltaWalk(b axbench.Benchmark, ds []Dataset, g stats.Guarantee, opts Options) (Result, error) {
	if err := validate(ds, g); err != nil {
		return Result{}, err
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 64
	}
	if opts.DeltaFrac <= 0 {
		opts.DeltaFrac = 0.02
	}
	span := opts.Obs.StartSpan("threshold.search",
		obs.A("algo", "delta-walk"), obs.A("bench", b.Name()))
	defer span.End()
	opts.Obs.Counter("threshold.searches").Inc()
	e := newEvaluator(b, ds, g, opts, span)
	maxErr := maxError(ds)
	if maxErr == 0 {
		// The accelerator is exact on every invocation; any threshold
		// works and full invocation is free.
		return e.finish(0), nil
	}
	delta := opts.DeltaFrac * maxErr

	// Step 1: initialize (the paper says "a random value"; the midpoint
	// is a deterministic stand-in with the same convergence behaviour).
	th := maxErr / 2
	lastCertified := math.NaN()
	for iter := 0; iter < opts.MaxIter; iter++ {
		if e.certified(th) {
			lastCertified = th
			next := th + delta
			if next > maxErr {
				// Even full approximation certifies at this step size.
				if e.certified(maxErr) {
					return e.finish(maxErr), nil
				}
				next = maxErr
			}
			// Step 6: terminate when the last threshold certified and the
			// next does not.
			if !e.certified(next) {
				return e.finish(th), nil
			}
			th = next
		} else {
			next := th - delta
			if next < 0 {
				next = 0
			}
			if e.certified(next) {
				return e.finish(next), nil
			}
			if next == 0 {
				// Even all-precise execution fails (quality target of 0
				// with a lossy pipeline) — report uncertified.
				return e.finish(0), nil
			}
			th = next
		}
	}
	// Iteration budget exhausted: return the best certified threshold
	// seen, or the tightest probe.
	if !math.IsNaN(lastCertified) {
		return e.finish(lastCertified), nil
	}
	return e.finish(0), nil
}

// FindBisect locates the guarantee boundary by bisection over
// [0, maxError]: the loosest certified threshold within Tolerance. It
// produces the same operating point as the delta-walk with an order of
// magnitude fewer instrumented evaluations.
func FindBisect(b axbench.Benchmark, ds []Dataset, g stats.Guarantee, opts Options) (Result, error) {
	if err := validate(ds, g); err != nil {
		return Result{}, err
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 64
	}
	if opts.Tolerance <= 0 {
		opts.Tolerance = 1e-3
	}
	span := opts.Obs.StartSpan("threshold.search",
		obs.A("algo", "bisect"), obs.A("bench", b.Name()))
	defer span.End()
	opts.Obs.Counter("threshold.searches").Inc()
	e := newEvaluator(b, ds, g, opts, span)
	maxErr := maxError(ds)
	if maxErr == 0 || e.certified(maxErr) {
		return e.finish(maxErr), nil
	}
	if !e.certified(0) {
		return e.finish(0), nil
	}
	lo, hi := 0.0, maxErr // lo certified, hi not
	for iter := 0; iter < opts.MaxIter && hi-lo > opts.Tolerance*maxErr; iter++ {
		mid := (lo + hi) / 2
		if e.certified(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return e.finish(lo), nil
}
