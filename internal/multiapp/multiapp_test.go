package multiapp

import (
	"sync"
	"testing"

	"mithra/internal/dataset"
	"mithra/internal/mathx"
	"mithra/internal/stats"
	"mithra/internal/threshold"
)

var (
	pipeOnce sync.Once
	pipeVal  *Pipeline
	pipeErr  error
)

func sharedPipeline(t *testing.T) *Pipeline {
	t.Helper()
	pipeOnce.Do(func() {
		cfg := DefaultTrainConfig()
		cfg.Samples = 1200
		cfg.Train.Epochs = 30
		cfg.ImageW, cfg.ImageH = 48, 48
		pipeVal, pipeErr = NewPipeline(cfg)
	})
	if pipeErr != nil {
		t.Fatal(pipeErr)
	}
	return pipeVal
}

func frames(n, w, h int, seed uint64) []*dataset.Image {
	rng := mathx.NewRNG(seed)
	out := make([]*dataset.Image, n)
	for i := range out {
		out[i] = dataset.GenImage(rng.Split(uint64(i)), w, h)
	}
	return out
}

func TestNewPipelineValidation(t *testing.T) {
	cfg := DefaultTrainConfig()
	cfg.Samples = 2
	if _, err := NewPipeline(cfg); err == nil {
		t.Error("tiny sample budget should error")
	}
}

func TestEvaluatorBasics(t *testing.T) {
	p := sharedPipeline(t)
	e, err := NewEvaluator(p, frames(6, 48, 48, 1))
	if err != nil {
		t.Fatal(err)
	}
	if e.NumKernels() != 2 || e.NumDatasets() != 6 {
		t.Fatalf("dims: %d kernels, %d datasets", e.NumKernels(), e.NumDatasets())
	}
	for k := 0; k < 2; k++ {
		if e.MaxError(k) <= 0 {
			t.Errorf("kernel %d max error = %v", k, e.MaxError(k))
		}
	}
	// All-precise tuple => zero loss.
	if q := e.Quality(0, []float64{0, 0}); q != 0 {
		t.Errorf("all-precise quality = %v", q)
	}
	// Loosest tuple => positive loss.
	loose := e.Quality(0, []float64{e.MaxError(0), e.MaxError(1)})
	if loose <= 0 {
		t.Errorf("full-approx quality = %v, want > 0", loose)
	}
}

func TestEvaluatorRejectsBadFrames(t *testing.T) {
	p := sharedPipeline(t)
	if _, err := NewEvaluator(p, nil); err == nil {
		t.Error("no frames should error")
	}
	if _, err := NewEvaluator(p, frames(1, 50, 50, 2)); err == nil {
		t.Error("non-multiple-of-8 frames should error")
	}
}

func TestQualityMonotoneInThresholds(t *testing.T) {
	p := sharedPipeline(t)
	e, err := NewEvaluator(p, frames(3, 48, 48, 3))
	if err != nil {
		t.Fatal(err)
	}
	// Loosening either kernel's threshold must not improve quality.
	base := e.Quality(0, []float64{0.3 * e.MaxError(0), 0.3 * e.MaxError(1)})
	looser0 := e.Quality(0, []float64{e.MaxError(0), 0.3 * e.MaxError(1)})
	looser1 := e.Quality(0, []float64{0.3 * e.MaxError(0), e.MaxError(1)})
	if looser0 < base-1e-9 || looser1 < base-1e-9 {
		t.Errorf("loosening improved quality: base %v, k0 %v, k1 %v", base, looser0, looser1)
	}
}

func TestGreedyTupleOnRealPipeline(t *testing.T) {
	p := sharedPipeline(t)
	e, err := NewEvaluator(p, frames(12, 48, 48, 4))
	if err != nil {
		t.Fatal(err)
	}
	g := stats.Guarantee{QualityLoss: 0.05, SuccessRate: 0.5, Confidence: 0.85}
	res, err := threshold.FindGreedyTuple(e, g, nil, threshold.Options{MaxIter: 24, Tolerance: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Certified {
		t.Fatalf("pipeline tuple not certified: %+v", res)
	}
	if res.Thresholds[KernelSobel] < 0 || res.Thresholds[KernelJPEG] < 0 {
		t.Errorf("thresholds %v", res.Thresholds)
	}
	rates := e.RateAt(res.Thresholds)
	for k, r := range rates {
		if r < 0 || r > 1 {
			t.Errorf("kernel %d rate %v", k, r)
		}
	}
	// At the tuned tuple the joint quality must meet the target for the
	// certified fraction of frames.
	succ := 0
	for d := 0; d < e.NumDatasets(); d++ {
		if e.Quality(d, res.Thresholds) <= g.QualityLoss {
			succ++
		}
	}
	if succ != res.Successes {
		t.Errorf("recount %d != reported %d", succ, res.Successes)
	}
}

func TestInvocationRateMonotone(t *testing.T) {
	p := sharedPipeline(t)
	e, err := NewEvaluator(p, frames(3, 48, 48, 5))
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 2; k++ {
		tight := e.InvocationRate(k, 0.1*e.MaxError(k))
		loose := e.InvocationRate(k, e.MaxError(k))
		if loose < tight {
			t.Errorf("kernel %d: rate not monotone (%v -> %v)", k, tight, loose)
		}
		if loose < 0.99 {
			t.Errorf("kernel %d: rate at max error = %v, want ~1", k, loose)
		}
	}
}
