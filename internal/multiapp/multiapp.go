// Package multiapp implements a composite application that offloads TWO
// functions to the approximate accelerator — the case the paper's §III-A
// extension addresses: "If the application offloads multiple functions to
// the accelerator, this algorithm can be extended to greedily find a
// tuple of thresholds."
//
// The application is a smart-camera pipeline: each frame is edge-detected
// (the sobel kernel, 9→1) and the edge map is then block-compressed for
// storage (the jpeg kernel, 64→64); the final output is the decoded
// stored edge map. Because the second kernel consumes the first kernel's
// outputs, threshold probes cannot be replayed from recorded traces the
// way single-kernel programs are — every candidate tuple re-executes the
// pipeline with thresholded instrumentation, exactly like the paper's
// Algorithm 1 instrumented runs. The package implements
// threshold.MultiEvaluator so threshold.FindGreedyTuple can tune it.
package multiapp

import (
	"fmt"

	"mithra/internal/axbench"
	"mithra/internal/dataset"
	"mithra/internal/mathx"
	"mithra/internal/nn"
	"mithra/internal/npu"
	"mithra/internal/quality"
)

// Kernel indices in threshold tuples.
const (
	KernelSobel = 0
	KernelJPEG  = 1
	NumKernels  = 2
)

// Pipeline is the two-kernel application plus its trained accelerators.
type Pipeline struct {
	sobel *axbench.Sobel
	jpeg  *axbench.JPEG

	sobelAcc *npu.Accelerator
	jpegAcc  *npu.Accelerator
}

// TrainConfig sizes the pipeline's NPU training.
type TrainConfig struct {
	// Samples per kernel.
	Samples int
	// Train configures backprop for both NPUs.
	Train nn.TrainConfig
	// Seed keys sample generation and initialization.
	Seed uint64
	// ImageW, ImageH size the profiling frames.
	ImageW, ImageH int
}

// DefaultTrainConfig trains both NPUs in about a second.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Samples: 2500,
		Train: nn.TrainConfig{
			Epochs:       60,
			LearningRate: 0.2,
			Momentum:     0.9,
			BatchSize:    32,
			Seed:         1,
		},
		Seed:   11,
		ImageW: 64,
		ImageH: 64,
	}
}

// NewPipeline trains both kernels' NPUs on profiling frames.
func NewPipeline(cfg TrainConfig) (*Pipeline, error) {
	if cfg.Samples < 16 {
		return nil, fmt.Errorf("multiapp: need at least 16 samples per kernel")
	}
	p := &Pipeline{sobel: axbench.NewSobel(), jpeg: axbench.NewJPEG()}
	rng := mathx.NewRNG(cfg.Seed)

	var sobelSamples, jpegSamples []nn.Sample
	for frame := 0; len(sobelSamples) < cfg.Samples || len(jpegSamples) < cfg.Samples; frame++ {
		if frame > 16 {
			break
		}
		img := dataset.GenImage(rng.Split(uint64(frame)), cfg.ImageW, cfg.ImageH)
		// Sobel samples from the raw frame.
		in := axbench.NewImageInput(img)
		edge := p.sobel.Run(in, func(kin, kout []float64) {
			p.sobel.Precise(kin, kout)
			if len(sobelSamples) < cfg.Samples && rng.Bool(0.3) {
				sobelSamples = append(sobelSamples, nn.Sample{
					In:  append([]float64(nil), kin...),
					Out: append([]float64(nil), kout...),
				})
			}
		})
		// JPEG samples from the edge map (the distribution the second
		// kernel actually sees in this program).
		edgeImg := imageFrom(cfg.ImageW, cfg.ImageH, edge)
		jin, err := axbench.NewJPEGInput(edgeImg)
		if err != nil {
			return nil, err
		}
		p.jpeg.Run(jin, func(kin, kout []float64) {
			p.jpeg.Precise(kin, kout)
			if len(jpegSamples) < cfg.Samples {
				jpegSamples = append(jpegSamples, nn.Sample{
					In:  append([]float64(nil), kin...),
					Out: append([]float64(nil), kout...),
				})
			}
		})
	}

	sobelApprox, _ := nn.FitApproximator(p.sobel.Topology(), sobelSamples, cfg.Train, cfg.Seed^1)
	jpegApprox, _ := nn.FitApproximator(p.jpeg.Topology(), jpegSamples, cfg.Train, cfg.Seed^2)
	p.sobelAcc = npu.New(sobelApprox)
	p.jpegAcc = npu.New(jpegApprox)
	return p, nil
}

func imageFrom(w, h int, pix []float64) *dataset.Image {
	im := dataset.NewImage(w, h)
	copy(im.Pix, pix)
	return im
}

// kernelGate decides one kernel's execution per invocation; nil means
// always precise.
type kernelGate func(kin, pOut, aOut []float64) bool

// runFrame executes the pipeline on one frame. Each kernel invocation
// evaluates both the precise function and (when gated) the accelerator,
// mirroring the paper's instrumented execution; stats receives the
// per-kernel (invocations, accelerated) counts when non-nil.
func (p *Pipeline) runFrame(img *dataset.Image, gates [NumKernels]kernelGate, stats *[NumKernels][2]int) []float64 {
	sobelScratch := p.sobelAcc.NewScratch()
	jpegScratch := p.jpegAcc.NewScratch()
	pBuf1 := make([]float64, 1)
	aBuf1 := make([]float64, 1)
	pBuf64 := make([]float64, 64)
	aBuf64 := make([]float64, 64)

	gateInvoke := func(k int, gate kernelGate, precise func(in, out []float64),
		acc *npu.Accelerator, scratch *nn.EvalScratch, pBuf, aBuf []float64) axbench.Invoker {
		return func(kin, kout []float64) {
			precise(kin, pBuf)
			if stats != nil {
				stats[k][0]++
			}
			if gate == nil {
				copy(kout, pBuf)
				return
			}
			acc.Invoke(kin, aBuf, scratch)
			if gate(kin, pBuf, aBuf) {
				copy(kout, aBuf)
				if stats != nil {
					stats[k][1]++
				}
				return
			}
			copy(kout, pBuf)
		}
	}

	edge := p.sobel.Run(axbench.NewImageInput(img),
		gateInvoke(KernelSobel, gates[KernelSobel], p.sobel.Precise, p.sobelAcc, sobelScratch, pBuf1, aBuf1))
	edgeImg := imageFrom(img.W, img.H, edge)
	jin, err := axbench.NewJPEGInput(edgeImg)
	if err != nil {
		// Frame sizes are validated at construction; unreachable.
		panic(err)
	}
	return p.jpeg.Run(jin,
		gateInvoke(KernelJPEG, gates[KernelJPEG], p.jpeg.Precise, p.jpegAcc, jpegScratch, pBuf64, aBuf64))
}

// thresholdGate accelerates when every output element's error is within
// th (the paper's Equation 1 at this kernel's call site).
func thresholdGate(th float64) kernelGate {
	return func(_, pOut, aOut []float64) bool {
		return mathx.MaxAbsDiff(pOut, aOut) <= th
	}
}

// Evaluator adapts a frame set to threshold.MultiEvaluator. Frames must
// have dimensions that are multiples of 8 (the jpeg block grid).
type Evaluator struct {
	p       *Pipeline
	frames  []*dataset.Image
	precise [][]float64
	maxErrs [NumKernels]float64
	metric  quality.Metric
}

// NewEvaluator profiles the frames: computes each frame's precise final
// output and each kernel's maximum observed accelerator error (at the
// all-approximate operating point, where the second kernel sees the
// approximate edge maps).
func NewEvaluator(p *Pipeline, frames []*dataset.Image) (*Evaluator, error) {
	if len(frames) == 0 {
		return nil, fmt.Errorf("multiapp: no frames")
	}
	for i, f := range frames {
		if f.W%8 != 0 || f.H%8 != 0 {
			return nil, fmt.Errorf("multiapp: frame %d is %dx%d; dimensions must be multiples of 8", i, f.W, f.H)
		}
	}
	e := &Evaluator{p: p, frames: frames, metric: quality.ImageDiff{}}
	for _, f := range frames {
		e.precise = append(e.precise, p.runFrame(f, [NumKernels]kernelGate{nil, nil}, nil))
	}
	// Profile max errors. The second kernel's input distribution depends
	// on the first kernel's decisions, so errors are profiled at both
	// extreme operating points (everything approximate, and each kernel
	// alone) and the maxima taken — the search range must bound every
	// configuration the greedy tuner visits.
	profGate := func(k int) kernelGate {
		return func(_, pOut, aOut []float64) bool {
			if d := mathx.MaxAbsDiff(pOut, aOut); d > e.maxErrs[k] {
				e.maxErrs[k] = d
			}
			return true
		}
	}
	operatingPoints := [][NumKernels]kernelGate{
		{profGate(KernelSobel), profGate(KernelJPEG)},
		{profGate(KernelSobel), nil},
		{nil, profGate(KernelJPEG)},
	}
	for _, gates := range operatingPoints {
		for _, f := range frames {
			p.runFrame(f, gates, nil)
		}
	}
	return e, nil
}

// NumKernels implements threshold.MultiEvaluator.
func (e *Evaluator) NumKernels() int { return NumKernels }

// NumDatasets implements threshold.MultiEvaluator.
func (e *Evaluator) NumDatasets() int { return len(e.frames) }

// Quality implements threshold.MultiEvaluator by re-executing the
// pipeline with thresholded gates (live instrumentation — kernel 2's
// inputs depend on kernel 1's decisions).
func (e *Evaluator) Quality(d int, ths []float64) float64 {
	out := e.p.runFrame(e.frames[d], [NumKernels]kernelGate{
		thresholdGate(ths[KernelSobel]),
		thresholdGate(ths[KernelJPEG]),
	}, nil)
	return e.metric.Loss(e.precise[d], out)
}

// MaxError implements threshold.MultiEvaluator.
func (e *Evaluator) MaxError(k int) float64 { return e.maxErrs[k] }

// InvocationRate implements threshold.MultiEvaluator: the kernel's
// accelerated fraction at threshold th with the other kernel precise
// (the greedy search's measurement point).
func (e *Evaluator) InvocationRate(k int, th float64) float64 {
	var gates [NumKernels]kernelGate
	gates[k] = thresholdGate(th)
	var stats [NumKernels][2]int
	for _, f := range e.frames {
		e.p.runFrame(f, gates, &stats)
	}
	if stats[k][0] == 0 {
		return 0
	}
	return float64(stats[k][1]) / float64(stats[k][0])
}

// RateAt measures both kernels' invocation rates at a tuple (for
// reporting after tuning).
func (e *Evaluator) RateAt(ths []float64) [NumKernels]float64 {
	var stats [NumKernels][2]int
	for _, f := range e.frames {
		e.p.runFrame(f, [NumKernels]kernelGate{
			thresholdGate(ths[KernelSobel]),
			thresholdGate(ths[KernelJPEG]),
		}, &stats)
	}
	var rates [NumKernels]float64
	for k := 0; k < NumKernels; k++ {
		if stats[k][0] > 0 {
			rates[k] = float64(stats[k][1]) / float64(stats[k][0])
		}
	}
	return rates
}
