package experiments

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func sampleTable() *Table {
	return &Table{
		ID:     "t1",
		Title:  "sample",
		Header: []string{"name", "value"},
		Rows:   [][]string{{"a", "1"}, {"b", "2"}},
		Notes:  []string{"plain note", "multi\nline chart"},
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0][0] != "name" || recs[2][1] != "2" {
		t.Errorf("csv = %v", recs)
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got struct {
		ID    string              `json:"id"`
		Rows  []map[string]string `json:"rows"`
		Notes []string            `json:"notes"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.ID != "t1" || len(got.Rows) != 2 || got.Rows[1]["value"] != "2" {
		t.Errorf("json = %+v", got)
	}
	// Chart notes (multi-line) are dropped.
	if len(got.Notes) != 1 || got.Notes[0] != "plain note" {
		t.Errorf("notes = %v", got.Notes)
	}
}

func TestWriteFormats(t *testing.T) {
	for _, f := range []Format{FormatText, FormatCSV, FormatJSON, ""} {
		var buf bytes.Buffer
		if err := sampleTable().Write(&buf, f); err != nil {
			t.Errorf("format %q: %v", f, err)
		}
		if buf.Len() == 0 {
			t.Errorf("format %q produced nothing", f)
		}
	}
	var buf bytes.Buffer
	if err := sampleTable().Write(&buf, "yaml"); err == nil {
		t.Error("unknown format should error")
	}
}

func TestRunAllFormatCSV(t *testing.T) {
	s := testSuite(t)
	var buf bytes.Buffer
	if err := RunAllFormat(s, &buf, FormatCSV); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "benchmark") {
		t.Error("csv output missing headers")
	}
}
