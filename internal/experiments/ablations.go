package experiments

import (
	"fmt"

	"mithra/internal/classifier"
	"mithra/internal/core"
	"mithra/internal/isa"
	"mithra/internal/mathx"
	"mithra/internal/nn"
	"mithra/internal/stats"
	"mithra/internal/threshold"
)

// tableVariantSweep evaluates a list of table configurations on every
// benchmark (benchmark-level parallelism) and returns per-config mean
// (invocation rate, FP, FN) rows.
func (s *Suite) tableVariantSweep(configs []classifier.TableConfig) ([][3]float64, error) {
	type cell struct{ inv, fp, fn float64 }
	benchIdx := map[string]int{}
	for i, n := range s.Cfg.Benchmarks {
		benchIdx[n] = i
	}
	cells := make([][]cell, len(s.Cfg.Benchmarks))
	err := s.forEachBenchmark(func(name string) error {
		d, err := s.Deployment(name, s.Cfg.HeadlineQuality)
		if err != nil {
			return err
		}
		ctx, err := s.Context(name)
		if err != nil {
			return err
		}
		row := make([]cell, len(configs))
		for ci, cfg := range configs {
			tab, err := d.TrainTableVariant(cfg)
			if err != nil {
				return err
			}
			r := d.EvaluateTable(tab, ctx.Validate)
			row[ci] = cell{inv: r.InvocationRate, fp: r.FPRate, fn: r.FNRate}
		}
		cells[benchIdx[name]] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([][3]float64, len(configs))
	for ci := range configs {
		var invs, fps, fns []float64
		for bi := range s.Cfg.Benchmarks {
			invs = append(invs, cells[bi][ci].inv)
			fps = append(fps, cells[bi][ci].fp)
			fns = append(fns, cells[bi][ci].fn)
		}
		out[ci] = [3]float64{mathx.Mean(invs), mathx.Mean(fps), mathx.Mean(fns)}
	}
	return out, nil
}

// AblationCombine compares the ensemble combination rules (OR / majority /
// AND) for the default table geometry at the headline quality level —
// the design choice DESIGN.md §6 calls out.
func (s *Suite) AblationCombine() (*Table, error) {
	t := &Table{
		ID:     "abl-combine",
		Title:  "Table ensemble combination rule ablation",
		Header: []string{"combine", "mean invocation rate", "mean FP", "mean FN"},
	}
	combines := []classifier.Combine{classifier.CombineAny, classifier.CombineMajority, classifier.CombineAll}
	var configs []classifier.TableConfig
	for _, comb := range combines {
		cfg := s.Cfg.Opts.TableCfg
		cfg.Combine = comb
		configs = append(configs, cfg)
	}
	rows, err := s.tableVariantSweep(configs)
	if err != nil {
		return nil, err
	}
	for i, comb := range combines {
		t.Rows = append(t.Rows, []string{
			comb.String(), fmtPct(rows[i][0]), fmtPct(rows[i][1]), fmtPct(rows[i][2]),
		})
	}
	t.Notes = append(t.Notes,
		"OR (any) is the most conservative rule (lowest FN, highest fallback); AND maximizes invocations at quality risk; majority balances")
	return t, nil
}

// AblationQuantBits sweeps the MISR quantization width — the knob that
// trades table generalization (coarse) against decision precision (fine).
func (s *Suite) AblationQuantBits() (*Table, error) {
	t := &Table{
		ID:     "abl-quant",
		Title:  "Table quantization width ablation",
		Header: []string{"bits", "mean invocation rate", "mean FP", "mean FN"},
	}
	bitsList := []int{4, 6, 8, 12}
	var configs []classifier.TableConfig
	for _, bits := range bitsList {
		cfg := s.Cfg.Opts.TableCfg
		cfg.QuantBits = bits
		configs = append(configs, cfg)
	}
	rows, err := s.tableVariantSweep(configs)
	if err != nil {
		return nil, err
	}
	for i, bits := range bitsList {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(bits), fmtPct(rows[i][0]), fmtPct(rows[i][1]), fmtPct(rows[i][2]),
		})
	}
	t.Notes = append(t.Notes,
		"finer quantization reduces cell poisoning but loses generalization on unseen inputs")
	return t, nil
}

// AblationSearch compares the paper's Algorithm 1 delta-walk against the
// bisection search: same operating point, different instrumented-run
// budgets.
func (s *Suite) AblationSearch() (*Table, error) {
	t := &Table{
		ID:     "abl-search",
		Title:  "Threshold search strategy ablation (Algorithm 1 delta-walk vs bisection)",
		Header: []string{"benchmark", "walk threshold", "bisect threshold", "walk evals", "bisect evals"},
	}
	rows := make([][]string, len(s.Cfg.Benchmarks))
	benchIdx := map[string]int{}
	for i, n := range s.Cfg.Benchmarks {
		benchIdx[n] = i
	}
	err := s.forEachBenchmark(func(name string) error {
		ctx, err := s.Context(name)
		if err != nil {
			return err
		}
		g := s.Guarantee(s.Cfg.HeadlineQuality)
		walk, err := threshold.FindDeltaWalk(ctx.Bench, ctx.Compile, g, s.Cfg.Opts.ThOpts)
		if err != nil {
			return err
		}
		bis, err := threshold.FindBisect(ctx.Bench, ctx.Compile, g, s.Cfg.Opts.ThOpts)
		if err != nil {
			return err
		}
		rows[benchIdx[name]] = []string{
			name,
			fmt.Sprintf("%.4f", walk.Threshold),
			fmt.Sprintf("%.4f", bis.Threshold),
			fmt.Sprint(walk.Iterations),
			fmt.Sprint(bis.Iterations),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"both land on the guarantee boundary; bisection needs far fewer instrumented runs")
	return t, nil
}

// AblationOnline measures the paper's online table-update rule: the
// pre-trained table versus the same table with sporadic runtime error
// sampling feeding updates.
func (s *Suite) AblationOnline(sampleEvery int) (*Table, error) {
	if sampleEvery < 1 {
		sampleEvery = 16
	}
	t := &Table{
		ID:    "abl-online",
		Title: fmt.Sprintf("Online table updates (sampling every %d invocations)", sampleEvery),
		Header: []string{"benchmark", "offline FN", "online FN", "offline speedup",
			"online speedup"},
	}
	rows := make([][]string, len(s.Cfg.Benchmarks))
	benchIdx := map[string]int{}
	for i, n := range s.Cfg.Benchmarks {
		benchIdx[n] = i
	}
	err := s.forEachBenchmark(func(name string) error {
		d, err := s.Deployment(name, s.Cfg.HeadlineQuality)
		if err != nil {
			return err
		}
		ctx, err := s.Context(name)
		if err != nil {
			return err
		}
		off := d.Evaluate(core.DesignTable, ctx.Validate)
		on := d.EvaluateTableOnline(sampleEvery, ctx.Validate)
		rows[benchIdx[name]] = []string{
			name, fmtPct(off.FNRate), fmtPct(on.FNRate),
			fmtX(off.Speedup), fmtX(on.Speedup),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"online updates monotonically reduce misses at a small error-sampling cost (paper §IV-C1)")
	return t, nil
}

// AblationInterval compares binomial lower-bound constructions in the
// paper's certification regime: required successes to certify the
// campaign's guarantee, the bound each method reports for the oracle's
// actual validation success count, and simulated one-sided coverage —
// quantifying why the paper insists on the exact Clopper-Pearson method.
func (s *Suite) AblationInterval() (*Table, error) {
	t := &Table{
		ID:    "abl-interval",
		Title: "Binomial lower-bound construction ablation",
		Header: []string{"method", "min successes (250)", "bound at 235/250",
			"coverage @ p=0.95"},
	}
	g := s.Guarantee(s.Cfg.HeadlineQuality)
	level := g.EffectiveLevel()
	for _, m := range stats.Methods() {
		t.Rows = append(t.Rows, []string{
			m.String(),
			fmt.Sprint(m.MinSuccessesFor(250, g.SuccessRate, level)),
			fmt.Sprintf("%.4f", m.LowerBound(235, 250, level)),
			fmtPct(m.Coverage(0.95, 100, 3000, level, 7)),
		})
	}
	t.Notes = append(t.Notes,
		"the exact method meets nominal coverage; Wald undercovers at extreme rates (why the paper uses Clopper-Pearson)")
	return t, nil
}

// AblationISA cross-validates the analytic timing model against the
// instruction-level model (enqueue/dequeue/branch streams on an in-order
// core): per benchmark, the table design's validation invocation mix is
// costed by both and the speedups compared.
func (s *Suite) AblationISA() (*Table, error) {
	t := &Table{
		ID:     "abl-isa",
		Title:  "Analytic vs instruction-level timing model",
		Header: []string{"benchmark", "invocation rate", "analytic speedup", "ISA-level speedup", "ratio"},
	}
	rows := make([][]string, len(s.Cfg.Benchmarks))
	benchIdx := map[string]int{}
	for i, n := range s.Cfg.Benchmarks {
		benchIdx[n] = i
	}
	err := s.forEachBenchmark(func(name string) error {
		d, err := s.Deployment(name, s.Cfg.HeadlineQuality)
		if err != nil {
			return err
		}
		ctx, err := s.Context(name)
		if err != nil {
			return err
		}
		res := d.Evaluate(core.DesignTable, ctx.Validate)
		// Re-cost the same invocation mix with the ISA model.
		totalInv := 0
		for _, ds := range ctx.Validate {
			totalInv += ds.Tr.N
		}
		nPrecise := int((1 - res.InvocationRate) * float64(totalInv))
		rep := isa.SimulateRegion(ctx.Bench, isa.DefaultCore(), totalInv, nPrecise,
			float64(ctx.Accel.CyclesPerInvocation()))
		rows[benchIdx[name]] = []string{
			name, fmtPct(res.InvocationRate), fmtX(res.Speedup), fmtX(rep.Speedup),
			fmt.Sprintf("%.2f", rep.Speedup/res.Speedup),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"two independent abstractions of the same machine; ratios near 1 validate the analytic composition")
	return t, nil
}

// AblationFixedPoint quantifies the NPU's fixed-point datapath: the
// trained float network is quantized at several Q-format widths and its
// divergence from the float evaluation measured on real accelerator
// inputs. The hardware NPU computes in fixed point with a LUT sigmoid;
// this shows how many fractional bits the paper's 5% budgets leave room
// for.
func (s *Suite) AblationFixedPoint() (*Table, error) {
	t := &Table{
		ID:     "abl-fixed",
		Title:  "NPU fixed-point datapath (RMS divergence from float, normalized outputs)",
		Header: []string{"benchmark", "Q.6", "Q.8", "Q.10", "Q.12"},
	}
	bitsList := []int{6, 8, 10, 12}
	rows := make([][]string, len(s.Cfg.Benchmarks))
	benchIdx := map[string]int{}
	for i, n := range s.Cfg.Benchmarks {
		benchIdx[n] = i
	}
	err := s.forEachBenchmark(func(name string) error {
		ctx, err := s.Context(name)
		if err != nil {
			return err
		}
		approx := ctx.Accel.Approximator()
		net := approx.Net
		// Sample scaled inputs from the first validation trace.
		tr := ctx.Validate[0].Tr
		stride := tr.N/400 + 1
		var inputs [][]float64
		for i := 0; i < tr.N; i += stride {
			raw := tr.Input(i)
			scaled := approx.InScale.Apply(raw, make([]float64, len(raw)))
			inputs = append(inputs, scaled)
		}
		row := []string{name}
		for _, bits := range bitsList {
			cfg := nn.DefaultFixedConfig()
			cfg.FracBits = bits
			fixed, err := net.Quantize(cfg)
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.4f", fixed.RMSDivergence(net, inputs)))
		}
		rows[benchIdx[name]] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"divergence is in the network's normalized [0,1] output space; >= 8 fractional bits keeps the format noise well under the error thresholds")
	return t, nil
}

// AblationPredictors compares MITHRA's two classifiers against the
// related-work mechanisms the paper contrasts in §VI: Rumba-style
// decision trees and error-value regression. Each predictor is trained on
// the same tuples and evaluated on the validation datasets at the
// headline quality level.
func (s *Suite) AblationPredictors() (*Table, error) {
	t := &Table{
		ID:    "abl-predictors",
		Title: "Classifier mechanism comparison (incl. §VI related-work baselines)",
		Header: []string{"benchmark", "mechanism", "invocation", "FP", "FN",
			"successes", "size B"},
	}
	rows := make([][][]string, len(s.Cfg.Benchmarks))
	benchIdx := map[string]int{}
	for i, n := range s.Cfg.Benchmarks {
		benchIdx[n] = i
	}
	err := s.forEachBenchmark(func(name string) error {
		d, err := s.Deployment(name, s.Cfg.HeadlineQuality)
		if err != nil {
			return err
		}
		ctx, err := s.Context(name)
		if err != nil {
			return err
		}
		samples := d.TrainingSamples()
		errsRaw := d.TrainingErrors()

		dt, err := classifier.TrainDTree(ctx.Bench.InputDim(), samples, classifier.DefaultDTreeOptions())
		if err != nil {
			return err
		}
		regSamples := make([]classifier.RegSample, len(samples))
		for i := range samples {
			regSamples[i] = classifier.RegSample{In: samples[i].In, Err: errsRaw[i]}
		}
		reg, regErr := classifier.TrainRegressor(ctx.Bench.InputDim(), regSamples,
			d.Th.Threshold, classifier.DefaultRegressorOptions())

		var bench [][]string
		add := func(mech string, r core.EvalResult, size int) {
			bench = append(bench, []string{
				name, mech, fmtPct(r.InvocationRate), fmtPct(r.FPRate), fmtPct(r.FNRate),
				fmt.Sprintf("%d/%d", r.Successes, len(r.Qualities)),
				fmt.Sprint(size),
			})
		}
		add("table", d.EvaluateValidation(core.DesignTable), d.Table.SizeBytes())
		add("neural", d.EvaluateValidation(core.DesignNeural), d.Neural.SizeBytes())
		add("dtree", d.EvaluateClassifier(dt, ctx.Validate), dt.SizeBytes())
		if regErr == nil {
			add("regress", d.EvaluateClassifier(reg, ctx.Validate), reg.SizeBytes())
		} else {
			bench = append(bench, []string{name, "regress", "-", "-", "-", "ill-conditioned", "-"})
		}
		rows[benchIdx[name]] = bench
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, bench := range rows {
		t.Rows = append(t.Rows, bench...)
	}
	t.Notes = append(t.Notes,
		"paper §VI argues error-value regression is less reliable than binary classification; dtree/regress are the Rumba-style baselines")
	return t, nil
}
