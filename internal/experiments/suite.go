// Package experiments regenerates every table and figure of the paper's
// evaluation (§V). Each experiment is a method on Suite producing both
// structured series and a rendered text table; the per-experiment mapping
// to the paper is indexed in DESIGN.md §4 and the measured-vs-paper
// comparison is recorded in EXPERIMENTS.md.
//
// A Suite lazily builds and caches the expensive artifacts — one
// core.Context per benchmark (NPU + traces) and one core.Deployment per
// (benchmark, quality, success-rate) operating point — so a full report
// run shares work across figures exactly the way the paper's single
// evaluation campaign did.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"mithra/internal/axbench"
	"mithra/internal/core"
	"mithra/internal/parallel"
	"mithra/internal/stats"
)

// Config parameterizes an experiment campaign.
type Config struct {
	// Opts configures the compilation pipeline (scale, dataset counts,
	// training budgets).
	Opts core.Options
	// Benchmarks lists the suite to run (default: all six).
	Benchmarks []string
	// QualityLevels are the desired final quality losses swept by the
	// figures (paper: 2.5%, 5%, 7.5%, 10%).
	QualityLevels []float64
	// HeadlineQuality is the level used by single-point experiments
	// (paper: 5%).
	HeadlineQuality float64
	// SuccessRate and Confidence define the statistical guarantee
	// (paper: 90% success with 95% confidence, two-sided interval).
	SuccessRate, Confidence float64
	TwoSided                bool
}

// DefaultConfig mirrors the paper's campaign at medium scale.
func DefaultConfig() Config {
	return Config{
		Opts:            core.DefaultOptions(),
		Benchmarks:      axbench.Names(),
		QualityLevels:   []float64{0.025, 0.05, 0.075, 0.10},
		HeadlineQuality: 0.05,
		SuccessRate:     0.90,
		Confidence:      0.95,
		TwoSided:        true,
	}
}

// TestConfig shrinks the campaign for unit tests.
func TestConfig() Config {
	c := DefaultConfig()
	c.Opts = core.TestOptions()
	c.Benchmarks = []string{"inversek2j", "sobel"}
	c.QualityLevels = []float64{0.05, 0.10}
	c.SuccessRate = 0.6
	c.Confidence = 0.9
	c.TwoSided = false
	return c
}

// Suite caches contexts, deployments, and evaluated tradeoff points
// across experiments.
type Suite struct {
	Cfg Config

	mu   sync.Mutex
	ctxs map[string]*ctxEntry
	deps map[string]*depEntry

	pmu    sync.Mutex
	points map[string]TradeoffPoint
}

// ctxEntry and depEntry give per-key build-once semantics without holding
// the suite lock across expensive builds, so different benchmarks compile
// concurrently.
type ctxEntry struct {
	once sync.Once
	ctx  *core.Context
	err  error
}

type depEntry struct {
	once sync.Once
	dep  *core.Deployment
	err  error
}

// NewSuite validates the configuration and returns an empty cache.
func NewSuite(cfg Config) (*Suite, error) {
	if len(cfg.Benchmarks) == 0 {
		return nil, fmt.Errorf("experiments: no benchmarks configured")
	}
	if len(cfg.QualityLevels) == 0 {
		return nil, fmt.Errorf("experiments: no quality levels configured")
	}
	for _, n := range cfg.Benchmarks {
		if _, err := axbench.New(n); err != nil {
			return nil, err
		}
	}
	return &Suite{
		Cfg:    cfg,
		ctxs:   map[string]*ctxEntry{},
		deps:   map[string]*depEntry{},
		points: map[string]TradeoffPoint{},
	}, nil
}

// forEachBenchmark runs f once per configured benchmark on the campaign's
// worker pool (Config.Opts.Parallelism). The fan-out grain is the
// benchmark: each task owns every deployment of its benchmark, and tasks
// never share one, while the inner pipeline stages (capture, threshold
// search, candidate training, evaluation) parallelize further over
// datasets and candidates. Errors surface joined in benchmark order.
func (s *Suite) forEachBenchmark(f func(name string) error) error {
	return parallel.ForEach(s.Cfg.Opts.Parallelism, len(s.Cfg.Benchmarks),
		func(i int) error { return f(s.Cfg.Benchmarks[i]) })
}

// Guarantee builds the statistical guarantee for a quality level.
func (s *Suite) Guarantee(quality float64) stats.Guarantee {
	return stats.Guarantee{
		QualityLoss: quality,
		SuccessRate: s.Cfg.SuccessRate,
		Confidence:  s.Cfg.Confidence,
		TwoSided:    s.Cfg.TwoSided,
	}
}

// Context returns (building if needed) the benchmark's compiled context.
// Builds for different benchmarks proceed concurrently.
func (s *Suite) Context(name string) (*core.Context, error) {
	s.mu.Lock()
	e, ok := s.ctxs[name]
	if !ok {
		e = &ctxEntry{}
		s.ctxs[name] = e
	}
	s.mu.Unlock()
	e.once.Do(func() {
		b, err := axbench.New(name)
		if err != nil {
			e.err = err
			return
		}
		s.Cfg.Opts.Obs.Log().Verbosef("building context for %s", name)
		e.ctx, e.err = core.NewContext(b, s.Cfg.Opts)
	})
	return e.ctx, e.err
}

// Deployment returns (building if needed) the deployment of a benchmark
// at a quality level with the campaign's success rate.
func (s *Suite) Deployment(name string, quality float64) (*core.Deployment, error) {
	return s.DeploymentAt(name, quality, s.Cfg.SuccessRate)
}

// DeploymentAt allows overriding the success rate (the Figure 10 sweep).
func (s *Suite) DeploymentAt(name string, quality, successRate float64) (*core.Deployment, error) {
	key := fmt.Sprintf("%s|%.6f|%.6f", name, quality, successRate)
	s.mu.Lock()
	e, ok := s.deps[key]
	if !ok {
		e = &depEntry{}
		s.deps[key] = e
	}
	s.mu.Unlock()
	e.once.Do(func() {
		ctx, err := s.Context(name)
		if err != nil {
			e.err = err
			return
		}
		g := s.Guarantee(quality)
		g.SuccessRate = successRate
		d, err := ctx.Deploy(g)
		if err != nil {
			e.err = fmt.Errorf("experiments: deploy %s at q=%v s=%v: %w", name, quality, successRate, err)
			return
		}
		e.dep = d
	})
	return e.dep, e.err
}

// Table is a rendered experiment artifact.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// fmtPct renders a fraction as a percentage.
func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// fmtX renders a gain factor.
func fmtX(v float64) string { return fmt.Sprintf("%.2fx", v) }
