package experiments

import (
	"strings"
	"testing"
)

func TestChartRender(t *testing.T) {
	c := Chart{
		Title:  "test chart",
		XLabel: "x",
		Width:  40,
		Height: 8,
		Series: []Series{
			{Name: "rising", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}},
			{Name: "flat", X: []float64{0, 1, 2, 3}, Y: []float64{1, 1, 1, 1}},
		},
	}
	out := c.Render()
	if !strings.Contains(out, "test chart") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "a = rising") || !strings.Contains(out, "b = flat") {
		t.Errorf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Error("missing marks")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 12 {
		t.Errorf("chart too short: %d lines", len(lines))
	}
}

func TestChartEmpty(t *testing.T) {
	c := Chart{Title: "empty"}
	if out := c.Render(); !strings.Contains(out, "no data") {
		t.Errorf("empty chart = %q", out)
	}
}

func TestChartDegenerateRanges(t *testing.T) {
	c := Chart{
		Title:  "constant",
		Series: []Series{{Name: "s", X: []float64{1, 1}, Y: []float64{2, 2}}},
	}
	out := c.Render() // must not panic or divide by zero
	if !strings.Contains(out, "constant") {
		t.Error("missing title")
	}
}
