package experiments

import (
	"fmt"

	"mithra/internal/core"
	"mithra/internal/mathx"
)

// TradeoffPoint is one (design, quality level) cell of Figures 6 and 8.
type TradeoffPoint struct {
	Benchmark      string
	Quality        float64
	Design         core.Design
	Speedup        float64
	EnergyRed      float64
	EDP            float64
	InvocationRate float64
	Successes      int
	Datasets       int
	CertifiedLower float64
	FPRate, FNRate float64
}

// Fig6Result carries the geomean tradeoff curves.
type Fig6Result struct {
	Points []TradeoffPoint // aggregated (Benchmark == "geomean")
	Table  *Table
}

// fig6Designs are the designs Figures 6-8 sweep.
func fig6Designs() []core.Design {
	return []core.Design{core.DesignOracle, core.DesignTable, core.DesignNeural}
}

// perBenchmarkPoint evaluates one (benchmark, quality, design) cell on
// the validation datasets, memoizing results so Figures 6, 7, and 8 share
// evaluations. Cells for the same benchmark must not be computed
// concurrently (classifier scratch state); prewarmPoints arranges that.
func (s *Suite) perBenchmarkPoint(name string, q float64, design core.Design) (TradeoffPoint, error) {
	return s.pointAt(name, q, s.Cfg.SuccessRate, design)
}

func (s *Suite) pointAt(name string, q, successRate float64, design core.Design) (TradeoffPoint, error) {
	key := fmt.Sprintf("%s|%.6f|%.6f|%d", name, q, successRate, design)
	s.pmu.Lock()
	p, ok := s.points[key]
	s.pmu.Unlock()
	if ok {
		return p, nil
	}
	d, err := s.DeploymentAt(name, q, successRate)
	if err != nil {
		return TradeoffPoint{}, err
	}
	res := d.EvaluateValidation(design)
	p = TradeoffPoint{
		Benchmark:      name,
		Quality:        q,
		Design:         design,
		Speedup:        res.Speedup,
		EnergyRed:      res.EnergyReduction,
		EDP:            res.EDPImprovement,
		InvocationRate: res.InvocationRate,
		Successes:      res.Successes,
		Datasets:       len(res.Qualities),
		CertifiedLower: res.CertifiedLower,
		FPRate:         res.FPRate,
		FNRate:         res.FNRate,
	}
	s.pmu.Lock()
	s.points[key] = p
	s.pmu.Unlock()
	return p, nil
}

// prewarmPoints computes every (benchmark, quality, design) cell with
// benchmark-level parallelism; subsequent point lookups hit the cache.
func (s *Suite) prewarmPoints(qualities []float64, designs []core.Design) error {
	return s.forEachBenchmark(func(name string) error {
		for _, q := range qualities {
			for _, design := range designs {
				if _, err := s.perBenchmarkPoint(name, q, design); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

// Fig6 reproduces Figures 6a-6c: geometric-mean speedup, energy
// reduction, and average invocation rate across all benchmarks for the
// oracle, table-based, and neural designs at each desired quality level,
// under the campaign's statistical guarantee.
func (s *Suite) Fig6() (*Fig6Result, error) {
	res := &Fig6Result{
		Table: &Table{
			ID:    "fig6",
			Title: "Geomean speedup / energy reduction / invocation rate vs quality loss",
			Header: []string{"quality", "design", "speedup (6a)", "energy red (6b)",
				"invocation (6c)", "successes"},
		},
	}
	if err := s.prewarmPoints(s.Cfg.QualityLevels, fig6Designs()); err != nil {
		return nil, err
	}
	for _, q := range s.Cfg.QualityLevels {
		for _, design := range fig6Designs() {
			var speeds, energies, rates []float64
			succ, total := 0, 0
			for _, name := range s.Cfg.Benchmarks {
				p, err := s.perBenchmarkPoint(name, q, design)
				if err != nil {
					return nil, err
				}
				speeds = append(speeds, p.Speedup)
				energies = append(energies, p.EnergyRed)
				rates = append(rates, p.InvocationRate)
				succ += p.Successes
				total += p.Datasets
			}
			agg := TradeoffPoint{
				Benchmark:      "geomean",
				Quality:        q,
				Design:         design,
				Speedup:        mathx.Geomean(speeds),
				EnergyRed:      mathx.Geomean(energies),
				InvocationRate: mathx.Mean(rates),
			}
			res.Points = append(res.Points, agg)
			res.Table.Rows = append(res.Table.Rows, []string{
				fmtPct(q), design.String(), fmtX(agg.Speedup), fmtX(agg.EnergyRed),
				fmtPct(agg.InvocationRate), fmt.Sprintf("%d/%d", succ, total),
			})
		}
	}
	res.Table.Notes = append(res.Table.Notes,
		"paper at 5%: table 2.5x speedup / 2.6x energy, oracle +26% perf / +36% energy, invocation 64% (table) 73% (neural)")

	// Render 6a as a chart: one speedup curve per design over quality.
	var series []Series
	for _, design := range fig6Designs() {
		s := Series{Name: design.String()}
		for _, p := range res.Points {
			if p.Design == design {
				s.X = append(s.X, p.Quality)
				s.Y = append(s.Y, p.Speedup)
			}
		}
		series = append(series, s)
	}
	chart := Chart{
		Title:  "Figure 6a: geomean speedup (y) vs desired quality loss (x)",
		XLabel: "quality loss",
		Height: 12,
		Series: series,
	}
	res.Table.Notes = append(res.Table.Notes, "\n"+chart.Render())
	return res, nil
}

// Fig7Result carries the false-decision rates.
type Fig7Result struct {
	Points []TradeoffPoint
	Table  *Table
}

// Fig7 reproduces Figure 7: the false positive and false negative rates
// of the table-based and neural designs versus the oracle's decisions,
// averaged across benchmarks at each quality level.
func (s *Suite) Fig7() (*Fig7Result, error) {
	res := &Fig7Result{
		Table: &Table{
			ID:     "fig7",
			Title:  "False decisions vs the oracle",
			Header: []string{"quality", "design", "false positives", "false negatives"},
		},
	}
	if err := s.prewarmPoints(s.Cfg.QualityLevels, core.RealDesigns()); err != nil {
		return nil, err
	}
	for _, q := range s.Cfg.QualityLevels {
		for _, design := range core.RealDesigns() {
			var fps, fns []float64
			for _, name := range s.Cfg.Benchmarks {
				p, err := s.perBenchmarkPoint(name, q, design)
				if err != nil {
					return nil, err
				}
				fps = append(fps, p.FPRate)
				fns = append(fns, p.FNRate)
			}
			agg := TradeoffPoint{
				Benchmark: "mean",
				Quality:   q,
				Design:    design,
				FPRate:    mathx.Mean(fps),
				FNRate:    mathx.Mean(fns),
			}
			res.Points = append(res.Points, agg)
			res.Table.Rows = append(res.Table.Rows, []string{
				fmtPct(q), design.String(), fmtPct(agg.FPRate), fmtPct(agg.FNRate),
			})
		}
	}
	res.Table.Notes = append(res.Table.Notes,
		"paper at 5%: table 22% FP / 5% FN; neural 18% FP / 9% FN; FN << FP (conservative designs)")
	return res, nil
}

// Fig8Result carries the per-benchmark breakdown.
type Fig8Result struct {
	Points []TradeoffPoint
	Table  *Table
}

// Fig8 reproduces Figure 8: per-benchmark speedup, energy reduction, and
// invocation rate for every design and quality level.
func (s *Suite) Fig8() (*Fig8Result, error) {
	res := &Fig8Result{
		Table: &Table{
			ID:    "fig8",
			Title: "Per-benchmark tradeoffs",
			Header: []string{"benchmark", "quality", "design", "speedup",
				"energy red", "invocation", "successes"},
		},
	}
	if err := s.prewarmPoints(s.Cfg.QualityLevels, fig6Designs()); err != nil {
		return nil, err
	}
	for _, name := range s.Cfg.Benchmarks {
		for _, q := range s.Cfg.QualityLevels {
			for _, design := range fig6Designs() {
				p, err := s.perBenchmarkPoint(name, q, design)
				if err != nil {
					return nil, err
				}
				res.Points = append(res.Points, p)
				res.Table.Rows = append(res.Table.Rows, []string{
					name, fmtPct(q), design.String(), fmtX(p.Speedup),
					fmtX(p.EnergyRed), fmtPct(p.InvocationRate),
					fmt.Sprintf("%d/%d", p.Successes, p.Datasets),
				})
			}
		}
	}
	res.Table.Notes = append(res.Table.Notes,
		"paper: jmeint/jpeg show the largest table-vs-neural invocation gaps (wide input vectors alias in the tables)")
	return res, nil
}
