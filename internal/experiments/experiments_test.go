package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"mithra/internal/core"
)

// The suite is expensive to build; share one across all tests in the
// package.
var (
	suiteOnce sync.Once
	suiteVal  *Suite
	suiteErr  error
)

func testSuite(t *testing.T) *Suite {
	t.Helper()
	suiteOnce.Do(func() {
		suiteVal, suiteErr = NewSuite(TestConfig())
	})
	if suiteErr != nil {
		t.Fatal(suiteErr)
	}
	return suiteVal
}

func TestNewSuiteValidation(t *testing.T) {
	bad := TestConfig()
	bad.Benchmarks = nil
	if _, err := NewSuite(bad); err == nil {
		t.Error("no benchmarks should error")
	}
	bad = TestConfig()
	bad.QualityLevels = nil
	if _, err := NewSuite(bad); err == nil {
		t.Error("no quality levels should error")
	}
	bad = TestConfig()
	bad.Benchmarks = []string{"nosuch"}
	if _, err := NewSuite(bad); err == nil {
		t.Error("unknown benchmark should error")
	}
}

func TestSuiteCaching(t *testing.T) {
	s := testSuite(t)
	c1, err := s.Context("inversek2j")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s.Context("inversek2j")
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("contexts not cached")
	}
	d1, err := s.Deployment("inversek2j", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := s.Deployment("inversek2j", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Error("deployments not cached")
	}
	d3, err := s.Deployment("inversek2j", 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if d1 == d3 {
		t.Error("different quality levels share a deployment")
	}
}

func TestFig1(t *testing.T) {
	s := testSuite(t)
	r, err := s.Fig1(11)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != len(s.Cfg.Benchmarks) {
		t.Fatalf("series count %d", len(r.Series))
	}
	for _, ser := range r.Series {
		if len(ser.X) != len(ser.Y) || len(ser.Y) == 0 {
			t.Fatalf("series %s malformed", ser.Name)
		}
		// CDF must be monotone and end at 1.
		for i := 1; i < len(ser.Y); i++ {
			if ser.Y[i] < ser.Y[i-1] {
				t.Fatalf("series %s not monotone", ser.Name)
			}
		}
		if ser.Y[len(ser.Y)-1] != 1 {
			t.Errorf("series %s does not reach 1", ser.Name)
		}
	}
}

func TestTable1(t *testing.T) {
	s := testSuite(t)
	r, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.FullApproxError <= 0 || row.FullApproxError > 0.9 {
			t.Errorf("%s: full approx error %v implausible", row.Name, row.FullApproxError)
		}
		if row.Invocations <= 0 || row.Topology == "" {
			t.Errorf("%s: malformed row %+v", row.Name, row)
		}
	}
}

func TestTable2(t *testing.T) {
	s := testSuite(t)
	r, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.TableCompressedKB <= 0 || row.TableCompressedKB > row.TableUncompressedKB+0.1 {
			t.Errorf("%s: compression out of range: %+v", row.Name, row)
		}
		if row.NeuralKB <= 0 || !strings.Contains(row.NeuralTopology, "->") {
			t.Errorf("%s: neural fields malformed: %+v", row.Name, row)
		}
	}
}

func TestFig6ShapeProperties(t *testing.T) {
	s := testSuite(t)
	r, err := s.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	want := len(s.Cfg.QualityLevels) * 3
	if len(r.Points) != want {
		t.Fatalf("points = %d, want %d", len(r.Points), want)
	}
	// Index points by (quality, design).
	at := map[[2]interface{}]TradeoffPoint{}
	for _, p := range r.Points {
		at[[2]interface{}{p.Quality, p.Design}] = p
	}
	for _, q := range s.Cfg.QualityLevels {
		oracle := at[[2]interface{}{q, core.DesignOracle}]
		if oracle.Speedup < 1 {
			t.Errorf("oracle speedup %v below 1 at q=%v", oracle.Speedup, q)
		}
	}
	// Looser quality must not reduce the oracle's invocation rate.
	qs := s.Cfg.QualityLevels
	for i := 1; i < len(qs); i++ {
		lo := at[[2]interface{}{qs[i-1], core.DesignOracle}]
		hi := at[[2]interface{}{qs[i], core.DesignOracle}]
		if hi.InvocationRate < lo.InvocationRate-1e-9 {
			t.Errorf("oracle invocation rate decreased with looser quality: %v->%v",
				lo.InvocationRate, hi.InvocationRate)
		}
	}
}

func TestFig7RatesInRange(t *testing.T) {
	s := testSuite(t)
	r, err := s.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range r.Points {
		if p.FPRate < 0 || p.FPRate > 1 || p.FNRate < 0 || p.FNRate > 1 {
			t.Errorf("rates out of range: %+v", p)
		}
	}
}

func TestFig8CoversAllCells(t *testing.T) {
	s := testSuite(t)
	r, err := s.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	want := len(s.Cfg.Benchmarks) * len(s.Cfg.QualityLevels) * 3
	if len(r.Points) != want {
		t.Fatalf("points = %d, want %d", len(r.Points), want)
	}
}

func TestFig9RelativeGains(t *testing.T) {
	s := testSuite(t)
	r, err := s.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(s.Cfg.Benchmarks)*2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.SpeedupVsRand <= 0 || row.EnergyVsRand <= 0 {
			t.Errorf("non-positive relative gain: %+v", row)
		}
	}
}

func TestFig10GuaranteeCostsBenefits(t *testing.T) {
	s := testSuite(t)
	r, err := s.Fig10([]float64{0.3, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	// For the oracle, a stricter success rate must not loosen the
	// threshold.
	var lowTh, highTh float64
	for _, p := range r.Points {
		if p.Design != core.DesignOracle {
			continue
		}
		if p.SuccessRate == 0.3 {
			lowTh = p.Threshold
		} else {
			highTh = p.Threshold
		}
	}
	if highTh > lowTh+1e-9 {
		t.Errorf("stricter success rate loosened threshold: %v -> %v", lowTh, highTh)
	}
}

func TestFig11ParetoShape(t *testing.T) {
	s := testSuite(t)
	r, err := s.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 16 {
		t.Fatalf("points = %d, want 16", len(r.Points))
	}
	for _, p := range r.Points {
		if p.InvocationRate < 0 || p.InvocationRate > 1 {
			t.Errorf("invocation rate out of range: %+v", p)
		}
	}
}

func TestSoftwareSlowdownPositive(t *testing.T) {
	s := testSuite(t)
	r, err := s.SoftwareSlowdown()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.TableSlowdown <= 1 {
			t.Errorf("%s: table software slowdown %v should exceed 1", row.Benchmark, row.TableSlowdown)
		}
		if row.NeuralSlowdown <= 1 {
			t.Errorf("%s: neural software slowdown %v should exceed 1", row.Benchmark, row.NeuralSlowdown)
		}
	}
}

func TestAblations(t *testing.T) {
	s := testSuite(t)
	for _, f := range []func() (*Table, error){
		func() (*Table, error) { return s.AblationCombine() },
		func() (*Table, error) { return s.AblationSearch() },
		func() (*Table, error) { return s.AblationOnline(8) },
		func() (*Table, error) { return s.AblationQuantBits() },
	} {
		tab, err := f()
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s: no rows", tab.ID)
		}
	}
}

func TestRunOneAndRender(t *testing.T) {
	s := testSuite(t)
	var buf bytes.Buffer
	if err := RunOne(s, "table1", &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "table1") || !strings.Contains(out, "inversek2j") {
		t.Errorf("render missing content:\n%s", out)
	}
	if err := RunOne(s, "nosuch", &buf); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestRunnersHaveUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range Runners() {
		if seen[r.ID] {
			t.Errorf("duplicate runner id %q", r.ID)
		}
		seen[r.ID] = true
		if r.Descr == "" {
			t.Errorf("runner %q missing description", r.ID)
		}
	}
	if len(seen) < 14 {
		t.Errorf("only %d runners registered", len(seen))
	}
}

func TestExtensionExperiments(t *testing.T) {
	s := testSuite(t)
	km, err := s.ExtKMeans()
	if err != nil {
		t.Fatal(err)
	}
	if len(km.Rows) != len(s.Cfg.QualityLevels)*3 {
		t.Errorf("ext-kmeans rows = %d", len(km.Rows))
	}
	multi, err := s.ExtMultiKernel()
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.Rows) != 2 {
		t.Errorf("ext-multi rows = %d", len(multi.Rows))
	}
}

func TestAblationPredictorsShapes(t *testing.T) {
	s := testSuite(t)
	tab, err := s.AblationPredictors()
	if err != nil {
		t.Fatal(err)
	}
	// Four mechanisms per benchmark.
	if len(tab.Rows) != 4*len(s.Cfg.Benchmarks) {
		t.Errorf("rows = %d", len(tab.Rows))
	}
	mechs := map[string]bool{}
	for _, r := range tab.Rows {
		mechs[r[1]] = true
	}
	for _, m := range []string{"table", "neural", "dtree", "regress"} {
		if !mechs[m] {
			t.Errorf("mechanism %s missing", m)
		}
	}
}
