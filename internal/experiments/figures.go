package experiments

import (
	"fmt"
	"strings"

	"mithra/internal/bdi"
	"mithra/internal/stats"
)

// Series is one named curve (x, y pairs).
type Series struct {
	Name string
	X, Y []float64
}

// Fig1Result carries the per-benchmark CDFs of final element error under
// full approximation.
type Fig1Result struct {
	Series []Series
	Table  *Table
}

// Fig1 reproduces Figure 1: the cumulative distribution of each output
// element's final error when the accelerator is always invoked. The
// paper's insight — only a small fraction (0-20%) of elements see large
// errors — is what makes selective fallback worthwhile.
func (s *Suite) Fig1(points int) (*Fig1Result, error) {
	if points < 2 {
		points = 11
	}
	res := &Fig1Result{
		Table: &Table{
			ID:     "fig1",
			Title:  "CDF of final element error under full approximation",
			Header: []string{"benchmark", "p50 err", "p90 err", "p99 err", "frac > 0.10"},
		},
	}
	for _, name := range s.Cfg.Benchmarks {
		ctx, err := s.Context(name)
		if err != nil {
			return nil, err
		}
		// Pool element errors over the compile datasets (they are the
		// "representative" runs the paper profiles).
		var errs []float64
		for _, d := range ctx.Compile {
			errs = append(errs, d.Tr.ElementErrors(ctx.Bench)...)
		}
		ecdf := stats.NewECDF(errs)
		xs, ys := ecdf.Curve(points)
		res.Series = append(res.Series, Series{Name: name, X: xs, Y: ys})
		res.Table.Rows = append(res.Table.Rows, []string{
			name,
			fmt.Sprintf("%.4f", ecdf.Quantile(0.50)),
			fmt.Sprintf("%.4f", ecdf.Quantile(0.90)),
			fmt.Sprintf("%.4f", ecdf.Quantile(0.99)),
			fmtPct(1 - ecdf.At(0.10)),
		})
	}
	res.Table.Notes = append(res.Table.Notes,
		"paper Fig. 1: only a small fraction (0%-20%) of output elements see large errors")
	chart := Chart{
		Title:  "Figure 1: CDF of element error (x = error, y = fraction of elements <= x)",
		XLabel: "element error",
		Series: res.Series,
	}
	res.Table.Notes = append(res.Table.Notes, "\n"+chart.Render())
	return res, nil
}

// Table1Row is one benchmark's summary line.
type Table1Row struct {
	Name, Domain, Metric string
	Topology             string
	Invocations          int
	FullApproxError      float64
}

// Table1Result carries the benchmark-suite summary.
type Table1Result struct {
	Rows  []Table1Row
	Table *Table
}

// Table1 reproduces Table I: the benchmark suite with each application's
// quality metric, NPU topology, and the final quality loss when the
// accelerator is invoked for every input ("Error with Full
// Approximation", 6.03%-17.69% in the paper).
func (s *Suite) Table1() (*Table1Result, error) {
	res := &Table1Result{
		Table: &Table{
			ID:    "table1",
			Title: "Benchmarks, quality metrics, and initial quality loss",
			Header: []string{"benchmark", "domain", "error metric", "NPU topology",
				"invocations/dataset", "full-approx error"},
		},
	}
	for _, name := range s.Cfg.Benchmarks {
		ctx, err := s.Context(name)
		if err != nil {
			return nil, err
		}
		topo := make([]string, len(ctx.Bench.Topology()))
		for i, t := range ctx.Bench.Topology() {
			topo[i] = fmt.Sprint(t)
		}
		row := Table1Row{
			Name:            name,
			Domain:          ctx.Bench.Domain(),
			Metric:          ctx.Bench.Metric().Name(),
			Topology:        strings.Join(topo, "->"),
			Invocations:     ctx.Compile[0].Tr.N,
			FullApproxError: ctx.FullQuality,
		}
		res.Rows = append(res.Rows, row)
		res.Table.Rows = append(res.Table.Rows, []string{
			row.Name, row.Domain, row.Metric, row.Topology,
			fmt.Sprint(row.Invocations), fmtPct(row.FullApproxError),
		})
	}
	res.Table.Notes = append(res.Table.Notes,
		"paper Table I reports full-approximation errors of 6.03%-17.69%")
	return res, nil
}

// Table2Row is one benchmark's classifier footprint.
type Table2Row struct {
	Name                string
	TableUncompressedKB float64
	TableCompressedKB   float64
	CompressionRatio    float64
	NeuralTopology      string
	NeuralKB            float64
}

// Table2Result carries the classifier size comparison.
type Table2Result struct {
	Rows  []Table2Row
	Table *Table
}

// Table2 reproduces Table II: the BDI-compressed size of the table-based
// design (8 tables x 0.5 KB uncompressed) and the selected neural
// classifier's topology and size, at the headline quality level.
func (s *Suite) Table2() (*Table2Result, error) {
	res := &Table2Result{
		Table: &Table{
			ID:    "table2",
			Title: fmt.Sprintf("Classifier sizes at %s quality loss", fmtPct(s.Cfg.HeadlineQuality)),
			Header: []string{"benchmark", "table raw KB", "table compressed KB", "ratio",
				"neural topology", "neural KB"},
		},
	}
	for _, name := range s.Cfg.Benchmarks {
		d, err := s.Deployment(name, s.Cfg.HeadlineQuality)
		if err != nil {
			return nil, err
		}
		raw := d.Table.RawBytes()
		comp := bdi.CompressedSize(raw)
		topoParts := make([]string, len(d.Neural.Topology()))
		for i, t := range d.Neural.Topology() {
			topoParts[i] = fmt.Sprint(t)
		}
		row := Table2Row{
			Name:                name,
			TableUncompressedKB: float64(len(raw)) / 1024,
			TableCompressedKB:   float64(comp) / 1024,
			CompressionRatio:    float64(len(raw)) / float64(comp),
			NeuralTopology:      strings.Join(topoParts, "->"),
			NeuralKB:            float64(d.Neural.SizeBytes()) / 1024,
		}
		res.Rows = append(res.Rows, row)
		res.Table.Rows = append(res.Table.Rows, []string{
			row.Name,
			fmt.Sprintf("%.2f", row.TableUncompressedKB),
			fmt.Sprintf("%.2f", row.TableCompressedKB),
			fmt.Sprintf("%.1fx", row.CompressionRatio),
			row.NeuralTopology,
			fmt.Sprintf("%.2f", row.NeuralKB),
		})
	}
	res.Table.Notes = append(res.Table.Notes,
		"paper Table II: sparse tables compress ~16x; jpeg/sobel stay dense; neural sizes 0.10-1.47 KB")
	return res, nil
}
