package experiments

import (
	"fmt"

	"mithra/internal/classifier"
	"mithra/internal/core"
	"mithra/internal/mathx"
)

// Fig9Row compares a classifier design against tuned random filtering on
// one benchmark at the headline quality level.
type Fig9Row struct {
	Benchmark     string
	Design        core.Design
	SpeedupVsRand float64
	EnergyVsRand  float64
}

// Fig9Result carries the random-filtering comparison.
type Fig9Result struct {
	Rows  []Fig9Row
	Table *Table
}

// Fig9 reproduces Figure 9: speedup and energy reduction of the
// table-based and neural designs relative to input-oblivious random
// filtering tuned to the same statistical guarantee, at the headline
// quality level.
func (s *Suite) Fig9() (*Fig9Result, error) {
	res := &Fig9Result{
		Table: &Table{
			ID:    "fig9",
			Title: fmt.Sprintf("Gains relative to random filtering at %s quality loss", fmtPct(s.Cfg.HeadlineQuality)),
			Header: []string{"benchmark", "design", "speedup vs random", "energy vs random",
				"random rate"},
		},
	}
	type benchRows struct {
		rows       []Fig9Row
		randomRate float64
	}
	perBench := make([]benchRows, len(s.Cfg.Benchmarks))
	benchIdx := map[string]int{}
	for i, n := range s.Cfg.Benchmarks {
		benchIdx[n] = i
	}
	err := s.forEachBenchmark(func(name string) error {
		d, err := s.Deployment(name, s.Cfg.HeadlineQuality)
		if err != nil {
			return err
		}
		rand := d.EvaluateValidation(core.DesignRandom)
		br := benchRows{randomRate: d.RandomRate}
		for _, design := range core.RealDesigns() {
			r := d.EvaluateValidation(design)
			br.rows = append(br.rows, Fig9Row{
				Benchmark:     name,
				Design:        design,
				SpeedupVsRand: r.Speedup / rand.Speedup,
				EnergyVsRand:  r.EnergyReduction / rand.EnergyReduction,
			})
		}
		perBench[benchIdx[name]] = br
		return nil
	})
	if err != nil {
		return nil, err
	}
	var tSpeed, tEnergy, nSpeed, nEnergy []float64
	for i, name := range s.Cfg.Benchmarks {
		for _, row := range perBench[i].rows {
			res.Rows = append(res.Rows, row)
			res.Table.Rows = append(res.Table.Rows, []string{
				name, row.Design.String(), fmtX(row.SpeedupVsRand), fmtX(row.EnergyVsRand),
				fmtPct(perBench[i].randomRate),
			})
			if row.Design == core.DesignTable {
				tSpeed = append(tSpeed, row.SpeedupVsRand)
				tEnergy = append(tEnergy, row.EnergyVsRand)
			} else {
				nSpeed = append(nSpeed, row.SpeedupVsRand)
				nEnergy = append(nEnergy, row.EnergyVsRand)
			}
		}
	}
	res.Table.Rows = append(res.Table.Rows,
		[]string{"geomean", "table", fmtX(mathx.Geomean(tSpeed)), fmtX(mathx.Geomean(tEnergy)), ""},
		[]string{"geomean", "neural", fmtX(mathx.Geomean(nSpeed)), fmtX(mathx.Geomean(nEnergy)), ""},
	)
	res.Table.Notes = append(res.Table.Notes,
		"paper: table +41% speedup / +50% energy over random; neural +46% / +76%; max 2.1x (inversek2j), 2.9x energy (blackscholes)")
	return res, nil
}

// Fig10Point is one success-rate operating point.
type Fig10Point struct {
	SuccessRate float64
	Design      core.Design
	EDP         float64
	Threshold   float64
}

// Fig10Result carries the success-rate sweep.
type Fig10Result struct {
	Points []Fig10Point
	Table  *Table
}

// Fig10 reproduces Figure 10: the energy-delay-product improvement at the
// headline quality level as the required success rate varies (with the
// campaign's confidence). Higher statistical guarantees tighten the
// threshold and cost benefits — the knob the programmer turns.
func (s *Suite) Fig10(successRates []float64) (*Fig10Result, error) {
	if len(successRates) == 0 {
		successRates = []float64{0.50, 0.60, 0.70, 0.80, 0.90}
	}
	res := &Fig10Result{
		Table: &Table{
			ID:    "fig10",
			Title: fmt.Sprintf("EDP improvement vs success rate at %s quality loss", fmtPct(s.Cfg.HeadlineQuality)),
			Header: []string{"success rate", "design", "geomean EDP improvement",
				"mean oracle threshold"},
		},
	}
	// Build every (benchmark, success rate) deployment with benchmark-level
	// parallelism, then assemble serially from the caches.
	err := s.forEachBenchmark(func(name string) error {
		for _, sr := range successRates {
			for _, design := range fig6Designs() {
				if _, err := s.pointAt(name, s.Cfg.HeadlineQuality, sr, design); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, sr := range successRates {
		for _, design := range fig6Designs() {
			var edps, ths []float64
			for _, name := range s.Cfg.Benchmarks {
				p, err := s.pointAt(name, s.Cfg.HeadlineQuality, sr, design)
				if err != nil {
					return nil, err
				}
				d, err := s.DeploymentAt(name, s.Cfg.HeadlineQuality, sr)
				if err != nil {
					return nil, err
				}
				edps = append(edps, p.EDP)
				ths = append(ths, d.Th.Threshold)
			}
			p := Fig10Point{
				SuccessRate: sr,
				Design:      design,
				EDP:         mathx.Geomean(edps),
				Threshold:   mathx.Mean(ths),
			}
			res.Points = append(res.Points, p)
			res.Table.Rows = append(res.Table.Rows, []string{
				fmtPct(sr), design.String(), fmtX(p.EDP), fmt.Sprintf("%.4f", p.Threshold),
			})
		}
	}
	res.Table.Notes = append(res.Table.Notes,
		"paper Fig. 10: higher success rates give stronger guarantees but smaller benefits")
	var series []Series
	for _, design := range fig6Designs() {
		s := Series{Name: design.String()}
		for _, p := range res.Points {
			if p.Design == design {
				s.X = append(s.X, p.SuccessRate)
				s.Y = append(s.Y, p.EDP)
			}
		}
		series = append(series, s)
	}
	chart := Chart{
		Title:  "Figure 10: geomean EDP improvement (y) vs required success rate (x)",
		XLabel: "success rate",
		Height: 12,
		Series: series,
	}
	res.Table.Notes = append(res.Table.Notes, "\n"+chart.Render())
	return res, nil
}

// Fig11Point is one table-design configuration.
type Fig11Point struct {
	NumTables      int
	TableBytes     int
	TotalKB        float64
	InvocationRate float64
	FNRate         float64
}

// Fig11Result carries the Pareto sweep.
type Fig11Result struct {
	Points []Fig11Point
	Table  *Table
}

// Fig11 reproduces Figure 11: the design-space exploration of the
// table-based classifier — {1,2,4,8} parallel tables x {0.125,0.5,2,8} KB
// per table — plotting uncompressed storage against the average
// validation invocation rate at the headline quality level.
func (s *Suite) Fig11() (*Fig11Result, error) {
	numTables := []int{1, 2, 4, 8}
	tableBytes := []int{128, 512, 2048, 8192}
	res := &Fig11Result{
		Table: &Table{
			ID:     "fig11",
			Title:  fmt.Sprintf("Table-design Pareto at %s quality loss", fmtPct(s.Cfg.HeadlineQuality)),
			Header: []string{"config", "total KB", "mean invocation rate", "mean FN rate"},
		},
	}
	type cell struct{ rate, fn float64 }
	var configs []classifier.TableConfig
	for _, nt := range numTables {
		for _, tb := range tableBytes {
			configs = append(configs, classifier.TableConfig{
				NumTables:  nt,
				TableBytes: tb,
				Combine:    s.Cfg.Opts.TableCfg.Combine,
				QuantBits:  s.Cfg.Opts.TableCfg.QuantBits,
				Project:    s.Cfg.Opts.TableCfg.Project,
			})
		}
	}
	benchIdx := map[string]int{}
	for i, n := range s.Cfg.Benchmarks {
		benchIdx[n] = i
	}
	cells := make([][]cell, len(s.Cfg.Benchmarks))
	err := s.forEachBenchmark(func(name string) error {
		d, err := s.Deployment(name, s.Cfg.HeadlineQuality)
		if err != nil {
			return err
		}
		ctx, err := s.Context(name)
		if err != nil {
			return err
		}
		row := make([]cell, len(configs))
		for ci, cfg := range configs {
			tab, err := d.TrainTableVariant(cfg)
			if err != nil {
				return err
			}
			r := d.EvaluateTable(tab, ctx.Validate)
			row[ci] = cell{rate: r.InvocationRate, fn: r.FNRate}
		}
		cells[benchIdx[name]] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ci, cfg := range configs {
		var rates, fns []float64
		for bi := range s.Cfg.Benchmarks {
			rates = append(rates, cells[bi][ci].rate)
			fns = append(fns, cells[bi][ci].fn)
		}
		{
			nt, tb := cfg.NumTables, cfg.TableBytes
			p := Fig11Point{
				NumTables:      nt,
				TableBytes:     tb,
				TotalKB:        float64(nt*tb) / 1024,
				InvocationRate: mathx.Mean(rates),
				FNRate:         mathx.Mean(fns),
			}
			res.Points = append(res.Points, p)
			res.Table.Rows = append(res.Table.Rows, []string{
				fmt.Sprintf("%dT x %.3gKB", nt, float64(tb)/1024),
				fmt.Sprintf("%.3g", p.TotalKB),
				fmtPct(p.InvocationRate),
				fmtPct(p.FNRate),
			})
		}
	}
	res.Table.Notes = append(res.Table.Notes,
		"paper Fig. 11: 8T x 0.5KB is Pareto optimal; tiny tables alias destructively, huge ones stop helping",
		"read jointly with FN: among configs that preserve quality (FN <= ~2%), 8T x 0.5KB maximizes invocations")
	return res, nil
}

// SoftRow is one benchmark's software-classifier slowdown.
type SoftRow struct {
	Benchmark      string
	TableSlowdown  float64
	NeuralSlowdown float64
}

// SoftResult carries the software-vs-hardware comparison.
type SoftResult struct {
	Rows  []SoftRow
	Table *Table
}

// SoftwareSlowdown reproduces the §V-A observation motivating the
// co-design: running the classifiers in software slows execution by 2.9x
// (table) and 9.6x (neural) on average relative to hardware support.
func (s *Suite) SoftwareSlowdown() (*SoftResult, error) {
	res := &SoftResult{
		Table: &Table{
			ID:     "soft",
			Title:  "Software classifier slowdown vs hardware (same decisions)",
			Header: []string{"benchmark", "table sw/hw slowdown", "neural sw/hw slowdown"},
		},
	}
	rows := make([]SoftRow, len(s.Cfg.Benchmarks))
	benchIdx := map[string]int{}
	for i, n := range s.Cfg.Benchmarks {
		benchIdx[n] = i
	}
	err := s.forEachBenchmark(func(name string) error {
		d, err := s.Deployment(name, s.Cfg.HeadlineQuality)
		if err != nil {
			return err
		}
		rows[benchIdx[name]] = SoftRow{
			Benchmark:      name,
			TableSlowdown:  d.EvaluateValidation(core.DesignTable).Speedup / d.EvaluateValidation(core.DesignTableSW).Speedup,
			NeuralSlowdown: d.EvaluateValidation(core.DesignNeural).Speedup / d.EvaluateValidation(core.DesignNeuralSW).Speedup,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var tabs, neus []float64
	for _, row := range rows {
		res.Rows = append(res.Rows, row)
		tabs = append(tabs, row.TableSlowdown)
		neus = append(neus, row.NeuralSlowdown)
		res.Table.Rows = append(res.Table.Rows, []string{
			row.Benchmark, fmtX(row.TableSlowdown), fmtX(row.NeuralSlowdown),
		})
	}
	res.Table.Rows = append(res.Table.Rows, []string{
		"geomean", fmtX(mathx.Geomean(tabs)), fmtX(mathx.Geomean(neus)),
	})
	res.Table.Notes = append(res.Table.Notes,
		"paper: software implementations slow execution by 2.9x (table) and 9.6x (neural) on average")
	return res, nil
}
