package experiments

import (
	"fmt"

	"mithra/internal/axbench"
	"mithra/internal/core"
	"mithra/internal/dataset"
	"mithra/internal/mathx"
	"mithra/internal/multiapp"
	"mithra/internal/stats"
	"mithra/internal/threshold"
)

// Extension experiments beyond the paper's evaluation: the kmeans
// benchmark (AxBench's seventh application) run through the full MITHRA
// campaign, and the two-kernel pipeline tuned with the §III-A greedy
// tuple extension.

// ExtKMeans runs the standard quality campaign on the kmeans extension
// benchmark at every configured quality level.
func (s *Suite) ExtKMeans() (*Table, error) {
	t := &Table{
		ID:    "ext-kmeans",
		Title: "Extension benchmark: kmeans through the full pipeline",
		Header: []string{"quality", "design", "speedup", "energy red",
			"invocation", "successes"},
	}
	b, err := axbench.New("kmeans")
	if err != nil {
		return nil, err
	}
	ctx, err := core.NewContext(b, s.Cfg.Opts)
	if err != nil {
		return nil, err
	}
	for _, q := range s.Cfg.QualityLevels {
		d, err := ctx.Deploy(s.Guarantee(q))
		if err != nil {
			return nil, err
		}
		for _, design := range fig6Designs() {
			r := d.EvaluateValidation(design)
			t.Rows = append(t.Rows, []string{
				fmtPct(q), design.String(), fmtX(r.Speedup), fmtX(r.EnergyReduction),
				fmtPct(r.InvocationRate),
				fmt.Sprintf("%d/%d", r.Successes, len(r.Qualities)),
			})
		}
	}
	t.Notes = append(t.Notes,
		"kmeans (6->8->4->1, image posterization) is beyond the paper's Table I; same machinery, same shapes")
	return t, nil
}

// ExtMultiKernel tunes the two-kernel smart-camera pipeline (sobel ->
// jpeg) with the greedy tuple extension, in both tuning orders.
func (s *Suite) ExtMultiKernel() (*Table, error) {
	t := &Table{
		ID:    "ext-multi",
		Title: "Multi-function greedy threshold tuple (sobel->jpeg pipeline)",
		Header: []string{"tuning order", "sobel th", "jpeg th", "sobel rate",
			"jpeg rate", "frames in budget"},
	}
	cfg := multiapp.DefaultTrainConfig()
	cfg.Seed = s.Cfg.Opts.Seed
	pipe, err := multiapp.NewPipeline(cfg)
	if err != nil {
		return nil, err
	}
	rng := mathx.NewRNG(s.Cfg.Opts.Seed ^ 0x77)
	frames := make([]*dataset.Image, 16)
	for i := range frames {
		frames[i] = dataset.GenImage(rng.Split(uint64(i)), cfg.ImageW, cfg.ImageH)
	}
	eval, err := multiapp.NewEvaluator(pipe, frames)
	if err != nil {
		return nil, err
	}
	// The tuple guarantee is scaled to the small frame count.
	g := stats.Guarantee{QualityLoss: s.Cfg.HeadlineQuality, SuccessRate: 0.6, Confidence: 0.85}
	for _, order := range [][]int{{0, 1}, {1, 0}} {
		res, err := threshold.FindGreedyTuple(eval, g, order, threshold.Options{MaxIter: 24, Tolerance: 0.01})
		if err != nil {
			return nil, err
		}
		rates := eval.RateAt(res.Thresholds)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(order),
			fmt.Sprintf("%.4f", res.Thresholds[multiapp.KernelSobel]),
			fmt.Sprintf("%.4f", res.Thresholds[multiapp.KernelJPEG]),
			fmtPct(rates[multiapp.KernelSobel]),
			fmtPct(rates[multiapp.KernelJPEG]),
			fmt.Sprintf("%d/%d", res.Successes, res.Trials),
		})
	}
	t.Notes = append(t.Notes,
		"paper §III-A: the greedy extension tunes one function at a time; whichever is tuned first claims the error budget (order dependence = suboptimality)")
	return t, nil
}
