package experiments

import (
	"bytes"
	"reflect"
	"testing"
)

// TestSuiteParallelismInvariant runs the same campaign serially and on
// the worker pool and asserts the artifacts — structured points and the
// rendered table — are identical. This exercises the whole stack at once:
// suite fan-out, context capture, threshold search, classifier tuning,
// and design evaluation all honor Config.Opts.Parallelism.
func TestSuiteParallelismInvariant(t *testing.T) {
	run := func(par int) (*Fig6Result, string) {
		cfg := TestConfig()
		cfg.Benchmarks = []string{"inversek2j"}
		cfg.Opts.Parallelism = par
		s, err := NewSuite(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Fig6()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		res.Table.Render(&buf)
		return res, buf.String()
	}
	serial, serialText := run(1)
	par, parText := run(8)
	if !reflect.DeepEqual(serial.Points, par.Points) {
		t.Errorf("points differ:\nserial   %+v\nparallel %+v", serial.Points, par.Points)
	}
	if serialText != parText {
		t.Errorf("rendered tables differ:\nserial:\n%s\nparallel:\n%s", serialText, parText)
	}
}
