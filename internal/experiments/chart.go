package experiments

import (
	"fmt"
	"math"
	"strings"
)

// Chart renders series as an ASCII line plot so the regenerated figures
// are figures, not just tables. One character cell per (column, row);
// series are labeled a, b, c, ... with a legend.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int
	Height int
	Series []Series
}

// Render draws the chart into a string.
func (c *Chart) Render() string {
	if c.Width <= 0 {
		c.Width = 64
	}
	if c.Height <= 0 {
		c.Height = 16
	}
	var xs, ys []float64
	for _, s := range c.Series {
		xs = append(xs, s.X...)
		ys = append(ys, s.Y...)
	}
	if len(xs) == 0 {
		return c.Title + ": (no data)\n"
	}
	xMin, xMax := minMax(xs)
	yMin, yMax := minMax(ys)
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMax = yMin + 1
	}

	grid := make([][]byte, c.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", c.Width))
	}
	for si, s := range c.Series {
		mark := byte('a' + si%26)
		for i := range s.X {
			col := int((s.X[i] - xMin) / (xMax - xMin) * float64(c.Width-1))
			row := int((s.Y[i] - yMin) / (yMax - yMin) * float64(c.Height-1))
			// Row 0 is the top of the plot.
			r := c.Height - 1 - row
			if col >= 0 && col < c.Width && r >= 0 && r < c.Height {
				grid[r][col] = mark
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", c.Title)
	yTop := fmt.Sprintf("%.3g", yMax)
	yBot := fmt.Sprintf("%.3g", yMin)
	pad := len(yTop)
	if len(yBot) > pad {
		pad = len(yBot)
	}
	for r, row := range grid {
		label := strings.Repeat(" ", pad)
		if r == 0 {
			label = fmt.Sprintf("%*s", pad, yTop)
		} else if r == c.Height-1 {
			label = fmt.Sprintf("%*s", pad, yBot)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", pad), strings.Repeat("-", c.Width))
	fmt.Fprintf(&b, "%s  %-*.3g%*.3g  (%s)\n",
		strings.Repeat(" ", pad), c.Width/2, xMin, c.Width-c.Width/2, xMax, c.XLabel)
	for si, s := range c.Series {
		fmt.Fprintf(&b, "%s   %c = %s\n", strings.Repeat(" ", pad), byte('a'+si%26), s.Name)
	}
	return b.String()
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return lo, hi
}
