package experiments

import (
	"fmt"
	"io"

	"mithra/internal/obs"
)

// Runner executes one named experiment and returns its rendered table.
type Runner struct {
	ID    string
	Descr string
	Run   func(s *Suite) (*Table, error)
}

// Runners lists every experiment in the paper's order. The cmd binaries
// and the bench harness both iterate this list.
func Runners() []Runner {
	return []Runner{
		{"fig1", "CDF of final element error under full approximation", func(s *Suite) (*Table, error) {
			r, err := s.Fig1(11)
			return tableOf(r, err)
		}},
		{"table1", "benchmark suite and initial quality loss", func(s *Suite) (*Table, error) {
			r, err := s.Table1()
			return tableOf(r, err)
		}},
		{"table2", "classifier sizes after compression", func(s *Suite) (*Table, error) {
			r, err := s.Table2()
			return tableOf(r, err)
		}},
		{"fig6", "geomean tradeoffs vs quality loss", func(s *Suite) (*Table, error) {
			r, err := s.Fig6()
			return tableOf(r, err)
		}},
		{"fig7", "false positives and negatives", func(s *Suite) (*Table, error) {
			r, err := s.Fig7()
			return tableOf(r, err)
		}},
		{"fig8", "per-benchmark tradeoffs", func(s *Suite) (*Table, error) {
			r, err := s.Fig8()
			return tableOf(r, err)
		}},
		{"fig9", "comparison with random filtering", func(s *Suite) (*Table, error) {
			r, err := s.Fig9()
			return tableOf(r, err)
		}},
		{"fig10", "EDP vs success rate", func(s *Suite) (*Table, error) {
			r, err := s.Fig10(nil)
			return tableOf(r, err)
		}},
		{"fig11", "table design Pareto analysis", func(s *Suite) (*Table, error) {
			r, err := s.Fig11()
			return tableOf(r, err)
		}},
		{"soft", "software classifier slowdown", func(s *Suite) (*Table, error) {
			r, err := s.SoftwareSlowdown()
			return tableOf(r, err)
		}},
		{"abl-combine", "ensemble combination ablation", func(s *Suite) (*Table, error) {
			return s.AblationCombine()
		}},
		{"abl-search", "threshold search ablation", func(s *Suite) (*Table, error) {
			return s.AblationSearch()
		}},
		{"abl-online", "online table update ablation", func(s *Suite) (*Table, error) {
			return s.AblationOnline(16)
		}},
		{"abl-quant", "quantization width ablation", func(s *Suite) (*Table, error) {
			return s.AblationQuantBits()
		}},
		{"abl-interval", "confidence interval method ablation", func(s *Suite) (*Table, error) {
			return s.AblationInterval()
		}},
		{"abl-isa", "analytic vs instruction-level timing model", func(s *Suite) (*Table, error) {
			return s.AblationISA()
		}},
		{"abl-fixed", "NPU fixed-point datapath ablation", func(s *Suite) (*Table, error) {
			return s.AblationFixedPoint()
		}},
		{"abl-predictors", "classifier mechanism comparison (related-work baselines)", func(s *Suite) (*Table, error) {
			return s.AblationPredictors()
		}},
		{"ext-kmeans", "extension benchmark: kmeans campaign", func(s *Suite) (*Table, error) {
			return s.ExtKMeans()
		}},
		{"ext-multi", "extension: multi-function greedy threshold tuple", func(s *Suite) (*Table, error) {
			return s.ExtMultiKernel()
		}},
	}
}

// tableOf extracts the Table field from any experiment result.
func tableOf(r interface{ table() *Table }, err error) (*Table, error) {
	if err != nil {
		return nil, err
	}
	return r.table(), nil
}

func (r *Fig1Result) table() *Table   { return r.Table }
func (r *Table1Result) table() *Table { return r.Table }
func (r *Table2Result) table() *Table { return r.Table }
func (r *Fig6Result) table() *Table   { return r.Table }
func (r *Fig7Result) table() *Table   { return r.Table }
func (r *Fig8Result) table() *Table   { return r.Table }
func (r *Fig9Result) table() *Table   { return r.Table }
func (r *Fig10Result) table() *Table  { return r.Table }
func (r *Fig11Result) table() *Table  { return r.Table }
func (r *SoftResult) table() *Table   { return r.Table }

// RunAll executes every experiment, rendering each to w as it completes.
// Progress goes through the campaign's logger and each experiment runs
// under its own span (telemetry is a no-op when Config.Opts.Obs is nil).
func RunAll(s *Suite, w io.Writer) error {
	o := s.Cfg.Opts.Obs
	for _, r := range Runners() {
		o.Log().Infof("running %s: %s", r.ID, r.Descr)
		if err := runObserved(s, r, w); err != nil {
			return err
		}
	}
	return nil
}

// runObserved executes one experiment inside its span.
func runObserved(s *Suite, r Runner, w io.Writer) error {
	o := s.Cfg.Opts.Obs
	span := o.StartSpan("experiment", obs.A("id", r.ID))
	t, err := r.Run(s)
	span.End()
	o.Counter("experiments.runs").Inc()
	if err != nil {
		return fmt.Errorf("experiments: %s: %w", r.ID, err)
	}
	t.Render(w)
	return nil
}

// RunOne executes a single experiment by ID.
func RunOne(s *Suite, id string, w io.Writer) error {
	for _, r := range Runners() {
		if r.ID == id {
			s.Cfg.Opts.Obs.Log().Infof("running %s: %s", r.ID, r.Descr)
			return runObserved(s, r, w)
		}
	}
	ids := make([]string, 0, len(Runners()))
	for _, r := range Runners() {
		ids = append(ids, r.ID)
	}
	return fmt.Errorf("experiments: unknown experiment %q (valid: %v)", id, ids)
}
