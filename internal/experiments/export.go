package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Machine-readable table output, so regenerated figures can feed external
// plotting tools. Charts and free-form notes are text-only and are
// dropped from these formats.

// WriteCSV emits the table as RFC-4180 CSV (header row first).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return fmt.Errorf("experiments: csv header: %w", err)
	}
	for i, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiments: csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonTable is the JSON wire form.
type jsonTable struct {
	ID     string              `json:"id"`
	Title  string              `json:"title"`
	Header []string            `json:"header"`
	Rows   []map[string]string `json:"rows"`
	Notes  []string            `json:"notes,omitempty"`
}

// WriteJSON emits the table as a JSON object with one map per row keyed
// by column name.
func (t *Table) WriteJSON(w io.Writer) error {
	jt := jsonTable{ID: t.ID, Title: t.Title, Header: t.Header}
	for _, row := range t.Rows {
		m := make(map[string]string, len(t.Header))
		for i, h := range t.Header {
			if i < len(row) {
				m[h] = row[i]
			}
		}
		jt.Rows = append(jt.Rows, m)
	}
	for _, n := range t.Notes {
		// Multi-line notes are rendered charts; skip them in JSON.
		if !strings.Contains(n, "\n") {
			jt.Notes = append(jt.Notes, n)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jt)
}

// Format selects a table rendering.
type Format string

// Supported output formats.
const (
	FormatText Format = "text"
	FormatCSV  Format = "csv"
	FormatJSON Format = "json"
)

// Write renders the table in the requested format.
func (t *Table) Write(w io.Writer, f Format) error {
	switch f {
	case FormatText, "":
		t.Render(w)
		return nil
	case FormatCSV:
		return t.WriteCSV(w)
	case FormatJSON:
		return t.WriteJSON(w)
	}
	return fmt.Errorf("experiments: unknown format %q (text|csv|json)", f)
}

// RunAllFormat is RunAll with a format selector.
func RunAllFormat(s *Suite, w io.Writer, f Format) error {
	for _, r := range Runners() {
		t, err := r.Run(s)
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", r.ID, err)
		}
		if err := t.Write(w, f); err != nil {
			return err
		}
	}
	return nil
}
