package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with the current output")

// compareGolden checks got against the named golden file, rewriting the
// file instead when -update is set.
func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run 'go test -update' to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s (run 'go test -update' after verifying):\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}

// TestTableRenderGolden pins the exact text format of rendered tables:
// column alignment, separator row, trailing-space trimming, and note
// placement. Every experiment artifact goes through this renderer, so a
// formatting regression would silently change every report.
func TestTableRenderGolden(t *testing.T) {
	tab := &Table{
		ID:     "demo",
		Title:  "Renderer fixture",
		Header: []string{"benchmark", "speedup", "notes column"},
		Rows: [][]string{
			{"sobel", "2.50x", "short"},
			{"inversek2j", "1.9x", "a longer cell that widens the column"},
			{"fft", "10.00x", ""},
		},
		Notes: []string{"first note", "second note"},
	}
	var buf bytes.Buffer
	tab.Render(&buf)
	compareGolden(t, "table_render.golden", buf.Bytes())
}
