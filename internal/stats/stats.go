// Package stats implements the statistical machinery MITHRA's compiler
// relies on: the Clopper-Pearson exact binomial confidence bounds used to
// provide statistical guarantees that a desired final quality loss will be
// met on unseen datasets (paper §III, Equation 3), plus the descriptive
// statistics and empirical CDFs used throughout the evaluation.
package stats

import (
	"fmt"
	"math"
	"sort"

	"mithra/internal/mathx"
)

// ClopperPearsonLower returns the lower limit of the one-sided
// Clopper-Pearson confidence interval for a binomial success proportion:
// with confidence `confidence`, the true success rate is at least the
// returned value given `successes` successes in `trials` independent
// trials.
//
// This is the quantity the paper calls S(q): "with 95% confidence we can
// project that at least 80.7% of unseen input sets will produce outputs
// that have quality loss level within 2.5%". The bound is conservative by
// construction (exact method, no normal approximation).
//
// The bound is computed through the Beta-distribution form
// L = BetaQuantile(1-confidence; s, n-s+1), which is algebraically
// identical to the F-distribution form in the paper's Equation 3 (the
// tests verify the equivalence explicitly).
func ClopperPearsonLower(successes, trials int, confidence float64) float64 {
	validateBinomial(successes, trials, confidence)
	if successes == 0 {
		return 0
	}
	s := float64(successes)
	n := float64(trials)
	return mathx.BetaQuantile(1-confidence, s, n-s+1)
}

// ClopperPearsonUpper returns the upper limit of the one-sided
// Clopper-Pearson interval: with the given confidence, the true success
// rate is at most the returned value.
func ClopperPearsonUpper(successes, trials int, confidence float64) float64 {
	validateBinomial(successes, trials, confidence)
	if successes == trials {
		return 1
	}
	s := float64(successes)
	n := float64(trials)
	return mathx.BetaQuantile(confidence, s+1, n-s)
}

// ClopperPearsonLowerF computes the same lower bound as
// ClopperPearsonLower but through the F-distribution formulation the paper
// prints as Equation 3:
//
//	L = s / (s + (n - s + 1) · F(β; 2(n-s+1), 2s))
//
// It exists to demonstrate and test the equivalence of the two standard
// formulations; production code uses the Beta form.
func ClopperPearsonLowerF(successes, trials int, confidence float64) float64 {
	validateBinomial(successes, trials, confidence)
	if successes == 0 {
		return 0
	}
	s := float64(successes)
	n := float64(trials)
	f := mathx.FQuantile(confidence, 2*(n-s+1), 2*s)
	return s / (s + (n-s+1)*f)
}

// MinSuccesses returns the smallest number of successes out of `trials`
// for which the Clopper-Pearson lower bound at `confidence` reaches
// `targetRate`. It returns trials+1 if even a perfect run cannot certify
// the target (i.e. the sample is too small for the requested guarantee).
//
// The compiler uses this to know, before running Algorithm 1, how many of
// the representative datasets must land within the desired quality loss:
// e.g. for 250 datasets, 90% success and 95% confidence, 235 datasets must
// succeed — exactly the figure reported in the paper's evaluation.
func MinSuccesses(trials int, targetRate, confidence float64) int {
	for s := 0; s <= trials; s++ {
		if ClopperPearsonLower(s, trials, confidence) >= targetRate {
			return s
		}
	}
	return trials + 1
}

func validateBinomial(successes, trials int, confidence float64) {
	if trials <= 0 {
		panic(fmt.Sprintf("stats: non-positive trials %d", trials))
	}
	if successes < 0 || successes > trials {
		panic(fmt.Sprintf("stats: successes %d out of range for %d trials", successes, trials))
	}
	if confidence <= 0 || confidence >= 1 {
		panic(fmt.Sprintf("stats: confidence %v outside (0,1)", confidence))
	}
}

// Summary holds descriptive statistics for a sample.
type Summary struct {
	N              int
	Mean, Min, Max float64
	Stddev         float64
	P50, P90, P99  float64
}

// Summarize computes descriptive statistics of xs. An empty sample yields
// a zero-valued Summary with N == 0.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum, sq := 0.0, 0.0
	for _, x := range xs {
		sum += x
		sq += x * x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	n := float64(len(xs))
	s.Mean = sum / n
	variance := sq/n - s.Mean*s.Mean
	if variance < 0 {
		variance = 0
	}
	s.Stddev = math.Sqrt(variance)
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = Percentile(sorted, 0.50)
	s.P90 = Percentile(sorted, 0.90)
	s.P99 = Percentile(sorted, 0.99)
	return s
}

// Percentile returns the p-th percentile (p in [0,1]) of an
// already-sorted sample using linear interpolation between order
// statistics. It panics on an empty sample or p outside [0,1].
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Percentile of empty sample")
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("stats: percentile %v outside [0,1]", p))
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// ECDF is an empirical cumulative distribution function over a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs (which it copies and sorts).
func NewECDF(xs []float64) *ECDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// At returns the fraction of the sample that is <= x.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(e.sorted))
}

// Quantile returns the smallest sample value v such that At(v) >= p.
func (e *ECDF) Quantile(p float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	p = mathx.Clamp(p, 0, 1)
	idx := int(math.Ceil(p*float64(len(e.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(e.sorted) {
		idx = len(e.sorted) - 1
	}
	return e.sorted[idx]
}

// Len returns the sample size.
func (e *ECDF) Len() int { return len(e.sorted) }

// Curve samples the ECDF at n evenly spaced points spanning the sample
// range and returns (x, y) pairs; this is what the Figure 1 reproduction
// prints.
func (e *ECDF) Curve(n int) (xs, ys []float64) {
	if len(e.sorted) == 0 || n < 2 {
		return nil, nil
	}
	lo, hi := e.sorted[0], e.sorted[len(e.sorted)-1]
	if lo == hi {
		return []float64{lo}, []float64{1}
	}
	xs = mathx.Linspace(lo, hi, n)
	ys = make([]float64, n)
	for i, x := range xs {
		ys[i] = e.At(x)
	}
	return xs, ys
}
