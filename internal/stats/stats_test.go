package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClopperPearsonPaperExample(t *testing.T) {
	// Paper §III example: 90 of 100 datasets within the desired loss.
	// The exact one-sided 95% lower bound is 0.8363; the two-sided-95%
	// (one-sided 97.5%) lower bound the paper's S^(97.5%) notation implies
	// is 0.8238.
	if got := ClopperPearsonLower(90, 100, 0.95); math.Abs(got-0.83628) > 1e-4 {
		t.Errorf("lower(90/100, 95%%) = %v, want 0.83628", got)
	}
	if got := ClopperPearsonLower(90, 100, 0.975); math.Abs(got-0.82378) > 1e-4 {
		t.Errorf("lower(90/100, 97.5%%) = %v, want 0.82378", got)
	}
}

func TestClopperPearsonMainResultRegime(t *testing.T) {
	// Paper §V: "to obtain these results, 235 (out of 250) of the test
	// input sets produced outputs that had the desired quality loss
	// level" for 90% success at 95% confidence. Under the paper's
	// two-sided interval convention (Guarantee.TwoSided), 235 is exactly
	// the minimum certifying count.
	g := PaperGuarantee()
	if got := g.RequiredSuccesses(250); got != 235 {
		t.Errorf("RequiredSuccesses(250) = %d, want 235", got)
	}
	if !g.Holds(235, 250) {
		t.Error("235/250 should certify the paper guarantee")
	}
	if g.Holds(234, 250) {
		t.Error("234/250 should not certify the paper guarantee")
	}
}

func TestGuaranteeEffectiveLevel(t *testing.T) {
	g := PaperGuarantee()
	if got := g.EffectiveLevel(); math.Abs(got-0.975) > 1e-12 {
		t.Errorf("two-sided 95%% effective level = %v, want 0.975", got)
	}
	g.TwoSided = false
	if got := g.EffectiveLevel(); got != 0.95 {
		t.Errorf("one-sided effective level = %v, want 0.95", got)
	}
}

func TestGuaranteeValidate(t *testing.T) {
	good := PaperGuarantee()
	if err := good.Validate(); err != nil {
		t.Errorf("paper guarantee should validate: %v", err)
	}
	bad := []Guarantee{
		{QualityLoss: -0.1, SuccessRate: 0.9, Confidence: 0.95},
		{QualityLoss: 0.05, SuccessRate: 0, Confidence: 0.95},
		{QualityLoss: 0.05, SuccessRate: 0.9, Confidence: 1},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
	if s := good.String(); s == "" {
		t.Error("String should be non-empty")
	}
}

func TestClopperPearsonEdges(t *testing.T) {
	if got := ClopperPearsonLower(0, 50, 0.95); got != 0 {
		t.Errorf("lower with zero successes = %v, want 0", got)
	}
	if got := ClopperPearsonUpper(50, 50, 0.95); got != 1 {
		t.Errorf("upper with all successes = %v, want 1", got)
	}
	// All-success lower bound: 1 - (1-conf)^(1/n), the rule of three's
	// exact counterpart.
	got := ClopperPearsonLower(20, 20, 0.95)
	want := math.Pow(0.05, 1.0/20)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("lower(20/20) = %v, want %v", got, want)
	}
}

func TestClopperPearsonPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero trials":    func() { ClopperPearsonLower(0, 0, 0.95) },
		"neg successes":  func() { ClopperPearsonLower(-1, 10, 0.95) },
		"too many":       func() { ClopperPearsonLower(11, 10, 0.95) },
		"bad confidence": func() { ClopperPearsonLower(5, 10, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			f()
		}()
	}
}

func TestBetaAndFFormsAgree(t *testing.T) {
	// The paper states Equation 3 in F-distribution form; we implement the
	// Beta form. They must agree everywhere.
	f := func(sr, nr uint8, cr uint16) bool {
		n := 2 + int(nr)%400
		s := 1 + int(sr)%n // s in [1, n]
		conf := 0.5 + 0.49*float64(cr)/65535
		a := ClopperPearsonLower(s, n, conf)
		b := ClopperPearsonLowerF(s, n, conf)
		return math.Abs(a-b) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestClopperPearsonMonotonicity(t *testing.T) {
	// More successes => higher lower bound; higher confidence => lower
	// lower bound.
	prev := -1.0
	for s := 0; s <= 100; s++ {
		lb := ClopperPearsonLower(s, 100, 0.95)
		if lb < prev-1e-12 {
			t.Fatalf("lower bound not monotone in successes at s=%d", s)
		}
		prev = lb
	}
	if ClopperPearsonLower(80, 100, 0.99) > ClopperPearsonLower(80, 100, 0.90) {
		t.Error("higher confidence should give a more conservative (smaller) lower bound")
	}
}

func TestClopperPearsonCoverageProperty(t *testing.T) {
	// The defining property: lower bound L satisfies
	// P(Bin(n, L) >= s) = 1 - confidence (for 0 < s < n).
	// Equivalently I_L(s, n-s+1) = 1 - confidence.
	binTail := func(n, s int, p float64) float64 {
		total := 0.0
		for k := s; k <= n; k++ {
			lgn, _ := math.Lgamma(float64(n + 1))
			lgk, _ := math.Lgamma(float64(k + 1))
			lgnk, _ := math.Lgamma(float64(n - k + 1))
			lp := lgn - lgk - lgnk + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p)
			total += math.Exp(lp)
		}
		return total
	}
	for _, c := range []struct {
		n, s int
		conf float64
	}{{100, 90, 0.95}, {250, 235, 0.95}, {250, 235, 0.99}, {40, 13, 0.9}} {
		l := ClopperPearsonLower(c.s, c.n, c.conf)
		tail := binTail(c.n, c.s, l)
		if math.Abs(tail-(1-c.conf)) > 1e-6 {
			t.Errorf("coverage violated for %+v: tail=%v want %v", c, tail, 1-c.conf)
		}
	}
}

func TestMinSuccessesUnreachable(t *testing.T) {
	// 5 trials cannot certify 90% at 95% confidence even with 5/5
	// (lower bound is 0.05^(1/5) ≈ 0.55).
	if got := MinSuccesses(5, 0.90, 0.95); got != 6 {
		t.Errorf("MinSuccesses(5, 0.9, 0.95) = %d, want 6 (unreachable)", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Mean != 2.5 {
		t.Errorf("Summarize basic fields wrong: %+v", s)
	}
	if math.Abs(s.P50-2.5) > 1e-12 {
		t.Errorf("P50 = %v, want 2.5", s.P50)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Errorf("empty summary N = %d", empty.N)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {1, 50}, {0.5, 30}, {0.25, 20}, {0.1, 14},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile([]float64{7}, 0.99); got != 7 {
		t.Errorf("single-element percentile = %v", got)
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("ECDF.At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if e.Len() != 4 {
		t.Errorf("Len = %d", e.Len())
	}
}

func TestECDFQuantile(t *testing.T) {
	e := NewECDF([]float64{5, 1, 3})
	if got := e.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v", got)
	}
	if got := e.Quantile(1); got != 5 {
		t.Errorf("Quantile(1) = %v", got)
	}
	if got := e.Quantile(0.5); got != 3 {
		t.Errorf("Quantile(0.5) = %v", got)
	}
}

func TestECDFQuantileIsInverse(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		e := NewECDF(xs)
		for _, p := range []float64{0.1, 0.5, 0.9} {
			if e.At(e.Quantile(p)) < p-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestECDFCurve(t *testing.T) {
	e := NewECDF([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	xs, ys := e.Curve(11)
	if len(xs) != 11 || len(ys) != 11 {
		t.Fatalf("curve lengths: %d, %d", len(xs), len(ys))
	}
	if ys[len(ys)-1] != 1 {
		t.Errorf("curve must end at 1, got %v", ys[len(ys)-1])
	}
	for i := 1; i < len(ys); i++ {
		if ys[i] < ys[i-1] {
			t.Fatalf("curve not monotone at %d", i)
		}
	}
	// Degenerate cases.
	if xs, ys := NewECDF(nil).Curve(5); xs != nil || ys != nil {
		t.Error("empty ECDF curve should be nil")
	}
	xs, ys = NewECDF([]float64{2, 2, 2}).Curve(5)
	if len(xs) != 1 || ys[0] != 1 {
		t.Errorf("constant sample curve: %v %v", xs, ys)
	}
}
