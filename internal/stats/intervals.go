package stats

import (
	"fmt"
	"math"

	"mithra/internal/mathx"
)

// The paper adopts the Clopper-Pearson exact method because it is
// guaranteed conservative: its lower bound never over-promises coverage,
// at the cost of certifying slightly fewer successes. This file provides
// the standard alternatives — the Wald (normal approximation), Wilson
// score, and Hoeffding bounds — so the choice can be quantified (the
// abl-interval experiment sweeps them). The alternatives are NOT used for
// the guarantees MITHRA reports.

// IntervalMethod identifies a binomial lower-bound construction.
type IntervalMethod int

// The implemented methods.
const (
	MethodClopperPearson IntervalMethod = iota
	MethodWilson
	MethodWald
	MethodHoeffding
)

func (m IntervalMethod) String() string {
	switch m {
	case MethodClopperPearson:
		return "clopper-pearson"
	case MethodWilson:
		return "wilson"
	case MethodWald:
		return "wald"
	case MethodHoeffding:
		return "hoeffding"
	}
	return fmt.Sprintf("IntervalMethod(%d)", int(m))
}

// Methods lists every implemented interval construction.
func Methods() []IntervalMethod {
	return []IntervalMethod{MethodClopperPearson, MethodWilson, MethodWald, MethodHoeffding}
}

// LowerBound computes the one-sided lower confidence bound on a binomial
// proportion with the selected method.
func (m IntervalMethod) LowerBound(successes, trials int, confidence float64) float64 {
	validateBinomial(successes, trials, confidence)
	switch m {
	case MethodClopperPearson:
		return ClopperPearsonLower(successes, trials, confidence)
	case MethodWilson:
		return wilsonLower(successes, trials, confidence)
	case MethodWald:
		return waldLower(successes, trials, confidence)
	case MethodHoeffding:
		return hoeffdingLower(successes, trials, confidence)
	}
	panic(fmt.Sprintf("stats: unknown interval method %d", int(m)))
}

// zQuantile returns the standard normal quantile for one-sided confidence
// c, via the Beta-based erf inverse (bisection on the CDF — cheap at the
// call rates involved).
func zQuantile(c float64) float64 {
	// Invert Phi(z) = c over a generous bracket.
	lo, hi := -10.0, 10.0
	for i := 0; i < 200 && hi-lo > 1e-12; i++ {
		mid := (lo + hi) / 2
		if 0.5*(1+math.Erf(mid/math.Sqrt2)) < c {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// wilsonLower is the Wilson score interval's lower limit.
func wilsonLower(successes, trials int, confidence float64) float64 {
	z := zQuantile(confidence)
	n := float64(trials)
	p := float64(successes) / n
	denom := 1 + z*z/n
	center := p + z*z/(2*n)
	rad := z * math.Sqrt(p*(1-p)/n+z*z/(4*n*n))
	return mathx.Clamp((center-rad)/denom, 0, 1)
}

// waldLower is the naive normal-approximation lower limit — known to
// undercover badly for extreme proportions, included as the cautionary
// baseline.
func waldLower(successes, trials int, confidence float64) float64 {
	z := zQuantile(confidence)
	n := float64(trials)
	p := float64(successes) / n
	return mathx.Clamp(p-z*math.Sqrt(p*(1-p)/n), 0, 1)
}

// hoeffdingLower applies Hoeffding's inequality:
// P(p̂ - p >= t) <= exp(-2 n t²), so with confidence c,
// p >= p̂ - sqrt(ln(1/(1-c)) / (2n)). Distribution-free and typically the
// most conservative.
func hoeffdingLower(successes, trials int, confidence float64) float64 {
	n := float64(trials)
	p := float64(successes) / n
	t := math.Sqrt(math.Log(1/(1-confidence)) / (2 * n))
	return mathx.Clamp(p-t, 0, 1)
}

// MinSuccessesFor returns the smallest success count certifying
// targetRate under the method, or trials+1 when unreachable.
func (m IntervalMethod) MinSuccessesFor(trials int, targetRate, confidence float64) int {
	for s := 0; s <= trials; s++ {
		if m.LowerBound(s, trials, confidence) >= targetRate {
			return s
		}
	}
	return trials + 1
}

// Coverage empirically estimates the one-sided coverage of the method's
// lower bound: the probability, over `sims` simulated binomial samples at
// true rate p, that the bound does not exceed p. Exact/conservative
// methods achieve at least the nominal confidence; the Wald interval
// visibly undercovers.
func (m IntervalMethod) Coverage(p float64, trials, sims int, confidence float64, seed uint64) float64 {
	rng := mathx.NewRNG(seed)
	covered := 0
	for s := 0; s < sims; s++ {
		succ := 0
		for t := 0; t < trials; t++ {
			if rng.Bool(p) {
				succ++
			}
		}
		if m.LowerBound(succ, trials, confidence) <= p {
			covered++
		}
	}
	return float64(covered) / float64(sims)
}
