package stats

import (
	"math"
	"testing"
)

func TestZQuantile(t *testing.T) {
	cases := []struct{ c, want float64 }{
		{0.5, 0},
		{0.95, 1.6449},
		{0.975, 1.9600},
		{0.99, 2.3263},
	}
	for _, cse := range cases {
		if got := zQuantile(cse.c); math.Abs(got-cse.want) > 1e-3 {
			t.Errorf("zQuantile(%v) = %v, want %v", cse.c, got, cse.want)
		}
	}
}

func TestMethodsAgreeOnEasyCases(t *testing.T) {
	// For a comfortable proportion and large n, all methods should give
	// similar bounds.
	for _, m := range Methods() {
		lb := m.LowerBound(200, 250, 0.95)
		if lb < 0.70 || lb > 0.80 {
			t.Errorf("%v: lower(200/250) = %v outside [0.70, 0.80]", m, lb)
		}
	}
}

func TestConservatismOrdering(t *testing.T) {
	// In the paper's regime (235/250 at 97.5%), the exact and Hoeffding
	// bounds must be at most the Wilson bound, and Wald must be the most
	// optimistic normal-family bound.
	cp := MethodClopperPearson.LowerBound(235, 250, 0.975)
	wilson := MethodWilson.LowerBound(235, 250, 0.975)
	wald := MethodWald.LowerBound(235, 250, 0.975)
	hoeff := MethodHoeffding.LowerBound(235, 250, 0.975)
	if cp > wilson+1e-9 {
		t.Errorf("CP (%v) should not exceed Wilson (%v)", cp, wilson)
	}
	if wilson > wald+1e-9 {
		t.Errorf("Wilson (%v) should not exceed Wald (%v) here", wilson, wald)
	}
	if hoeff > cp+1e-9 {
		t.Errorf("Hoeffding (%v) should be the most conservative (CP %v)", hoeff, cp)
	}
}

func TestEdgeProportions(t *testing.T) {
	for _, m := range Methods() {
		if lb := m.LowerBound(0, 50, 0.95); lb != 0 {
			t.Errorf("%v: lower(0/50) = %v, want 0", m, lb)
		}
		lb := m.LowerBound(50, 50, 0.95)
		if lb < 0 || lb > 1 {
			t.Errorf("%v: lower(50/50) = %v out of range", m, lb)
		}
	}
	// Wald degenerates at p̂=1 (zero width) — the known pathology.
	if lb := MethodWald.LowerBound(50, 50, 0.95); lb != 1 {
		t.Errorf("Wald at 50/50 = %v; expected its degenerate 1", lb)
	}
	// The exact bound stays properly below 1.
	if lb := MethodClopperPearson.LowerBound(50, 50, 0.95); lb >= 1 {
		t.Errorf("CP at 50/50 = %v, want < 1", lb)
	}
}

func TestCoverageExactVsWald(t *testing.T) {
	// The reason the paper uses the exact method: its one-sided coverage
	// meets the nominal level, while Wald undercovers at extreme p.
	const p = 0.95
	const trials = 100
	const sims = 2000
	const conf = 0.95
	cp := MethodClopperPearson.Coverage(p, trials, sims, conf, 1)
	wald := MethodWald.Coverage(p, trials, sims, conf, 1)
	if cp < conf-0.01 {
		t.Errorf("Clopper-Pearson coverage %v below nominal %v", cp, conf)
	}
	if wald >= cp {
		t.Errorf("Wald coverage %v should be below exact %v at extreme p", wald, cp)
	}
}

func TestMinSuccessesForOrdering(t *testing.T) {
	// A more conservative method needs at least as many successes.
	cp := MethodClopperPearson.MinSuccessesFor(250, 0.90, 0.975)
	wald := MethodWald.MinSuccessesFor(250, 0.90, 0.975)
	hoeff := MethodHoeffding.MinSuccessesFor(250, 0.90, 0.975)
	if cp != 235 {
		t.Errorf("CP MinSuccesses = %d, want the paper's 235", cp)
	}
	if wald > cp {
		t.Errorf("Wald (%d) should not require more than CP (%d)", wald, cp)
	}
	if hoeff < cp {
		t.Errorf("Hoeffding (%d) should require at least CP's (%d)", hoeff, cp)
	}
}

func TestMethodStrings(t *testing.T) {
	for _, m := range Methods() {
		if m.String() == "" {
			t.Error("empty method name")
		}
	}
	if IntervalMethod(99).String() == "" {
		t.Error("unknown method should stringify")
	}
}
