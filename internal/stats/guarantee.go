package stats

import "fmt"

// Guarantee describes the statistical guarantee the programmer requests
// from MITHRA: with probability Confidence, at least SuccessRate of unseen
// input datasets will meet the desired final quality loss.
//
// The paper quotes its results "for 95% confidence and 90% success rate"
// and writes the interval's lower limit as S^(97.5%) — i.e. it takes the
// lower limit of the *two-sided* 95% Clopper-Pearson interval, which is a
// one-sided bound at level 1 - (1-0.95)/2 = 97.5%. TwoSided preserves that
// convention (and reproduces the paper's "235 out of 250" operating
// point); setting it to false uses the nominal confidence directly as a
// one-sided level.
type Guarantee struct {
	// QualityLoss is the desired final output quality loss (e.g. 0.05 for
	// the paper's headline 5% level).
	QualityLoss float64
	// SuccessRate is the required fraction of unseen datasets meeting
	// QualityLoss (paper: 0.90).
	SuccessRate float64
	// Confidence is the probability the projection is true (paper: 0.95).
	Confidence float64
	// TwoSided selects the paper's two-sided interval convention.
	TwoSided bool
}

// PaperGuarantee returns the guarantee used for the paper's headline
// results: 5% quality loss, 90% success rate, 95% confidence, two-sided
// interval convention.
func PaperGuarantee() Guarantee {
	return Guarantee{QualityLoss: 0.05, SuccessRate: 0.90, Confidence: 0.95, TwoSided: true}
}

// EffectiveLevel returns the one-sided confidence level at which the
// Clopper-Pearson lower bound is evaluated.
func (g Guarantee) EffectiveLevel() float64 {
	if g.TwoSided {
		return 1 - (1-g.Confidence)/2
	}
	return g.Confidence
}

// LowerBound returns the certified success-rate lower bound for the given
// number of successful datasets.
func (g Guarantee) LowerBound(successes, trials int) float64 {
	return ClopperPearsonLower(successes, trials, g.EffectiveLevel())
}

// Holds reports whether `successes` out of `trials` certifies the
// guarantee.
func (g Guarantee) Holds(successes, trials int) bool {
	return g.LowerBound(successes, trials) >= g.SuccessRate
}

// RequiredSuccesses returns the minimum number of successful datasets out
// of `trials` needed to certify the guarantee, or trials+1 if the sample
// is too small for any outcome to certify it.
func (g Guarantee) RequiredSuccesses(trials int) int {
	return MinSuccesses(trials, g.SuccessRate, g.EffectiveLevel())
}

// Validate reports a descriptive error when the guarantee's parameters are
// outside their domains.
func (g Guarantee) Validate() error {
	if g.QualityLoss < 0 || g.QualityLoss >= 1 {
		return fmt.Errorf("stats: quality loss %v outside [0,1)", g.QualityLoss)
	}
	if g.SuccessRate <= 0 || g.SuccessRate >= 1 {
		return fmt.Errorf("stats: success rate %v outside (0,1)", g.SuccessRate)
	}
	if g.Confidence <= 0 || g.Confidence >= 1 {
		return fmt.Errorf("stats: confidence %v outside (0,1)", g.Confidence)
	}
	return nil
}

func (g Guarantee) String() string {
	return fmt.Sprintf("quality<=%.3g success>=%.0f%% conf=%.0f%%",
		g.QualityLoss, g.SuccessRate*100, g.Confidence*100)
}
