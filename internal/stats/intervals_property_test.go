package stats

import (
	"testing"
	"testing/quick"
)

// Property tests over randomized (successes, trials, confidence) domains.
// The raw quick-generated integers are folded into the domains each
// property is stated for; quick's default 100 iterations per property
// keep the suite fast while covering the grid far more densely than the
// hand-picked cases in intervals_test.go.

// quickCfg raises the iteration count: each check is cheap and the
// domains are three-dimensional.
var quickCfg = &quick.Config{MaxCount: 400}

// foldDomain maps raw quick values into a valid (successes, trials,
// confidence) triple: trials in [1, 400], successes in [0, trials],
// confidence in [0.05, 0.99].
func foldDomain(a, b, c uint32) (successes, trials int, confidence float64) {
	trials = 1 + int(a%400)
	successes = int(b % uint32(trials+1))
	confidence = 0.05 + 0.94*float64(c%1000)/999
	return
}

// TestLowerBoundRange: every method's lower bound stays within [0, 1]
// for any valid input.
func TestLowerBoundRange(t *testing.T) {
	for _, m := range Methods() {
		m := m
		f := func(a, b, c uint32) bool {
			s, n, conf := foldDomain(a, b, c)
			lb := m.LowerBound(s, n, conf)
			return lb >= 0 && lb <= 1
		}
		if err := quick.Check(f, quickCfg); err != nil {
			t.Errorf("%v: %v", m, err)
		}
	}
}

// TestLowerBoundNeverExceedsMLE: a lower confidence bound must not claim
// more than the observed proportion p̂ = s/n (for confidence >= 1/2,
// where the normal quantile is non-negative).
func TestLowerBoundNeverExceedsMLE(t *testing.T) {
	for _, m := range Methods() {
		m := m
		f := func(a, b, c uint32) bool {
			s, n, _ := foldDomain(a, b, c)
			conf := 0.5 + 0.49*float64(c%1000)/999
			return m.LowerBound(s, n, conf) <= float64(s)/float64(n)+1e-12
		}
		if err := quick.Check(f, quickCfg); err != nil {
			t.Errorf("%v: %v", m, err)
		}
	}
}

// TestLowerBoundMonotoneInSuccesses: with trials and confidence fixed,
// observing more successes never weakens the certified bound. The check
// walks every adjacent pair up to the drawn success count, so each quick
// iteration validates a whole prefix of the success axis.
func TestLowerBoundMonotoneInSuccesses(t *testing.T) {
	for _, m := range Methods() {
		m := m
		f := func(a, b, c uint32) bool {
			s, n, conf := foldDomain(a, b, c)
			prev := m.LowerBound(0, n, conf)
			for k := 1; k <= s; k++ {
				cur := m.LowerBound(k, n, conf)
				if cur < prev-1e-12 {
					return false
				}
				prev = cur
			}
			return true
		}
		if err := quick.Check(f, quickCfg); err != nil {
			t.Errorf("%v: %v", m, err)
		}
	}
}

// TestLowerBoundMonotoneInConfidence: demanding more confidence can only
// weaken (lower) the certified bound.
func TestLowerBoundMonotoneInConfidence(t *testing.T) {
	for _, m := range Methods() {
		m := m
		f := func(a, b, c, d uint32) bool {
			s, n, c1 := foldDomain(a, b, c)
			_, _, c2 := foldDomain(a, b, d)
			if c1 > c2 {
				c1, c2 = c2, c1
			}
			return m.LowerBound(s, n, c2) <= m.LowerBound(s, n, c1)+1e-12
		}
		if err := quick.Check(f, quickCfg); err != nil {
			t.Errorf("%v: %v", m, err)
		}
	}
}

// TestClopperPearsonMostConservativeBound compares the exact method
// against the normal approximations on the regime MITHRA certifies in:
// high success fractions (s >= 0.6n, the only region where a guarantee is
// worth certifying) at the confidence levels the experiments sweep
// (<= 0.975). There Clopper-Pearson's bound is the most conservative up
// to the approximations' discretization wobble (< 2e-3 on this domain;
// outside it, Wald's clamp-at-zero and Wilson's behaviour at p̂ -> 1 can
// dip below the exact bound, which is exactly why the paper's choice of
// the exact method matters — see TestWaldUndercovers in intervals_test.go
// for the coverage consequence).
func TestClopperPearsonMostConservativeBound(t *testing.T) {
	f := func(a, b, c uint32) bool {
		n := 10 + int(a%391) // [10, 400]
		lo := int(0.6*float64(n)) + 1
		s := lo + int(b%uint32(n-lo)) // [0.6n, n)
		conf := 0.8 + 0.175*float64(c%1000)/999
		cp := MethodClopperPearson.LowerBound(s, n, conf)
		for _, m := range []IntervalMethod{MethodWilson, MethodWald} {
			if m.LowerBound(s, n, conf) < cp-2e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestClopperPearsonMostConservativeCertification is the exact form of
// the conservatism property, stated on what actually matters to MITHRA:
// the success count a guarantee requires. Clopper-Pearson never demands
// fewer successes than the normal approximations at the confidences the
// campaign uses.
func TestClopperPearsonMostConservativeCertification(t *testing.T) {
	f := func(a, b, c uint32) bool {
		n := 10 + int(a%391)
		target := 0.5 + 0.45*float64(b%1000)/999 // [0.5, 0.95]
		conf := 0.8 + 0.175*float64(c%1000)/999  // [0.8, 0.975]
		need := MethodClopperPearson.MinSuccessesFor(n, target, conf)
		for _, m := range []IntervalMethod{MethodWilson, MethodWald} {
			if need < m.MinSuccessesFor(n, target, conf) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestHoeffdingConservative: the distribution-free bound never certifies
// more than the exact binomial bound (it cannot exploit the binomial
// shape), except for the clamp at zero where both floor out.
func TestHoeffdingConservative(t *testing.T) {
	f := func(a, b, c uint32) bool {
		s, n, conf := foldDomain(a, b, c)
		h := MethodHoeffding.LowerBound(s, n, conf)
		cp := MethodClopperPearson.LowerBound(s, n, conf)
		return h <= cp+2e-2 || h == 0
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}
