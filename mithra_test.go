package mithra

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestBenchmarksList(t *testing.T) {
	names := Benchmarks()
	if len(names) != 6 {
		t.Fatalf("Benchmarks() = %v", names)
	}
	for _, n := range names {
		if _, err := NewBenchmark(n); err != nil {
			t.Errorf("NewBenchmark(%q): %v", n, err)
		}
	}
	if _, err := NewBenchmark("bogus"); err == nil {
		t.Error("bogus benchmark should error")
	}
}

func TestPaperGuarantee(t *testing.T) {
	g := PaperGuarantee()
	if g.QualityLoss != 0.05 || g.SuccessRate != 0.90 || g.Confidence != 0.95 || !g.TwoSided {
		t.Errorf("PaperGuarantee = %+v", g)
	}
	if g.RequiredSuccesses(250) != 235 {
		t.Errorf("RequiredSuccesses(250) = %d, want the paper's 235", g.RequiredSuccesses(250))
	}
}

// sharedDeployment caches the expensive end-to-end compile for the facade
// tests.
var (
	depOnce sync.Once
	depVal  *Deployment
	depErr  error
)

func facadeDeployment(t *testing.T) *Deployment {
	t.Helper()
	depOnce.Do(func() {
		g := Guarantee{QualityLoss: 0.05, SuccessRate: 0.6, Confidence: 0.9}
		depVal, depErr = Compile("fft", g, TestOptions())
	})
	if depErr != nil {
		t.Fatal(depErr)
	}
	return depVal
}

func TestCompileEndToEnd(t *testing.T) {
	dep := facadeDeployment(t)
	if !dep.Th.Certified {
		t.Fatalf("threshold not certified: %+v", dep.Th)
	}
	res := dep.EvaluateValidation(DesignTable)
	if len(res.Qualities) == 0 {
		t.Fatal("no validation qualities")
	}
	if res.Speedup <= 0 {
		t.Errorf("speedup %v", res.Speedup)
	}
}

func TestCompileUnknownBenchmark(t *testing.T) {
	if _, err := Compile("nope", PaperGuarantee(), TestOptions()); err == nil {
		t.Error("unknown benchmark should error")
	}
}

func TestExperimentIDs(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 14 {
		t.Fatalf("ExperimentIDs = %v", ids)
	}
	want := map[string]bool{"fig1": true, "fig6": true, "fig11": true, "table1": true, "soft": true}
	for _, id := range ids {
		delete(want, id)
	}
	if len(want) != 0 {
		t.Errorf("missing experiment ids: %v", want)
	}
}

func TestReportSubset(t *testing.T) {
	cfg := DefaultReportConfig()
	cfg.Opts = TestOptions()
	cfg.Benchmarks = []string{"fft"}
	cfg.QualityLevels = []float64{0.05}
	cfg.SuccessRate = 0.6
	cfg.Confidence = 0.9
	cfg.TwoSided = false
	var buf bytes.Buffer
	if err := Report(cfg, &buf, "table1"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fft") {
		t.Errorf("report missing benchmark row:\n%s", buf.String())
	}
	if err := Report(cfg, &buf, "nosuch"); err == nil {
		t.Error("unknown experiment id should error")
	}
}

func TestFacadeProgramRoundTrip(t *testing.T) {
	dep := facadeDeployment(t)
	blob, err := dep.Export()
	if err != nil {
		t.Fatal(err)
	}
	p, err := LoadProgram(blob)
	if err != nil {
		t.Fatal(err)
	}
	if p.Bench.Name() != "fft" {
		t.Errorf("bench = %s", p.Bench.Name())
	}
	if _, err := LoadProgram([]byte("bogus")); err == nil {
		t.Error("bogus program should fail")
	}
}

func TestFacadeImageHelpers(t *testing.T) {
	// Build a tiny PGM in memory and run it through the facade helpers.
	src := "P2\n16 16\n255\n"
	for i := 0; i < 256; i++ {
		src += "128 "
	}
	im, err := ReadPGM(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if im.W != 16 || im.H != 16 {
		t.Fatalf("size %dx%d", im.W, im.H)
	}
	in := NewImageInput(im)
	if in.Invocations() != 256 {
		t.Errorf("sobel invocations = %d", in.Invocations())
	}
	jin, err := NewJPEGInput(im)
	if err != nil {
		t.Fatal(err)
	}
	if jin.Invocations() != 4 {
		t.Errorf("jpeg invocations = %d", jin.Invocations())
	}
	if _, err := ReadPGM(strings.NewReader("garbage")); err == nil {
		t.Error("garbage PGM should fail")
	}
}

func TestFacadeOptionsVariants(t *testing.T) {
	if PaperOptions().CompileN != 250 || PaperOptions().Scale.ImageW != 512 {
		t.Error("PaperOptions wrong")
	}
	if !PaperOptions().CompactTraces {
		t.Error("paper scale should use compact traces")
	}
	if DefaultOptions().CompileN != 100 {
		t.Error("DefaultOptions wrong")
	}
	cfg := DefaultReportConfig()
	if len(cfg.QualityLevels) != 4 || cfg.SuccessRate != 0.90 {
		t.Errorf("report config: %+v", cfg)
	}
}
