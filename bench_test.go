package mithra

// The benchmark harness regenerates every table and figure of the paper
// (DESIGN.md §4 maps IDs to paper artifacts). Each testing.B benchmark
// executes one experiment end to end against a shared, lazily-built suite
// at a reduced but shape-preserving scale; `go test -bench .` therefore
// reproduces the full evaluation campaign. For paper-scale numbers run
// cmd/mithra-report -scale paper.

import (
	"io"
	"sync"
	"testing"

	"mithra/internal/classifier"
	"mithra/internal/experiments"
	"mithra/internal/mathx"
	"mithra/internal/misr"
	"mithra/internal/nn"
	"mithra/internal/npu"
	"mithra/internal/stats"

	bdipkg "mithra/internal/bdi"
)

var (
	benchSuiteOnce sync.Once
	benchSuite     *experiments.Suite
	benchSuiteErr  error
)

// suiteForBench shares one suite (contexts + deployments) across all
// experiment benchmarks, mirroring how the paper's single campaign feeds
// every figure.
func suiteForBench(b *testing.B) *experiments.Suite {
	b.Helper()
	benchSuiteOnce.Do(func() {
		cfg := experiments.TestConfig()
		cfg.Benchmarks = Benchmarks() // all six
		benchSuite, benchSuiteErr = experiments.NewSuite(cfg)
	})
	if benchSuiteErr != nil {
		b.Fatal(benchSuiteErr)
	}
	return benchSuite
}

func runExperiment(b *testing.B, id string) {
	s := suiteForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.RunOne(s, id, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1ErrorCDF regenerates Figure 1 (error CDFs under full
// approximation).
func BenchmarkFig1ErrorCDF(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkTable1InitialError regenerates Table I (benchmarks and initial
// quality loss).
func BenchmarkTable1InitialError(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2ClassifierSizes regenerates Table II (compressed
// classifier sizes).
func BenchmarkTable2ClassifierSizes(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkFig6Tradeoffs regenerates Figures 6a-6c (geomean speedup,
// energy reduction, invocation rate vs quality loss).
func BenchmarkFig6Tradeoffs(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7FalseDecisions regenerates Figure 7 (false
// positives/negatives).
func BenchmarkFig7FalseDecisions(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8PerBenchmark regenerates Figure 8 (per-benchmark
// tradeoffs).
func BenchmarkFig8PerBenchmark(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9RandomFiltering regenerates Figure 9 (comparison with
// random filtering).
func BenchmarkFig9RandomFiltering(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10SuccessSweep regenerates Figure 10 (EDP vs success rate).
func BenchmarkFig10SuccessSweep(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11Pareto regenerates Figure 11 (table design space).
func BenchmarkFig11Pareto(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkSoftwareClassifier regenerates the software-slowdown
// comparison (§V-A).
func BenchmarkSoftwareClassifier(b *testing.B) { runExperiment(b, "soft") }

// BenchmarkAblationCombine regenerates the ensemble combination ablation.
func BenchmarkAblationCombine(b *testing.B) { runExperiment(b, "abl-combine") }

// BenchmarkAblationSearch regenerates the delta-walk vs bisection
// ablation.
func BenchmarkAblationSearch(b *testing.B) { runExperiment(b, "abl-search") }

// BenchmarkAblationOnline regenerates the online-update ablation.
func BenchmarkAblationOnline(b *testing.B) { runExperiment(b, "abl-online") }

// BenchmarkAblationQuantBits regenerates the quantization-width ablation.
func BenchmarkAblationQuantBits(b *testing.B) { runExperiment(b, "abl-quant") }

// BenchmarkAblationInterval regenerates the confidence-interval method
// comparison.
func BenchmarkAblationInterval(b *testing.B) { runExperiment(b, "abl-interval") }

// BenchmarkAblationISA regenerates the analytic-vs-ISA model cross-check.
func BenchmarkAblationISA(b *testing.B) { runExperiment(b, "abl-isa") }

// BenchmarkAblationFixedPoint regenerates the NPU fixed-point datapath
// ablation.
func BenchmarkAblationFixedPoint(b *testing.B) { runExperiment(b, "abl-fixed") }

// --- Microbenchmarks for the performance-critical substrates ------------

// BenchmarkMISRHash measures the table classifier's hash path (sobel's
// 9-element input).
func BenchmarkMISRHash(b *testing.B) {
	h := misr.NewHasher(misr.Pool()[0], 12)
	words := make([]uint16, 9)
	for i := range words {
		words[i] = uint16(i * 7321)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Hash(words)
	}
}

// BenchmarkTableClassify measures a full 8-table ensemble decision.
func BenchmarkTableClassify(b *testing.B) {
	rng := mathx.NewRNG(1)
	samples := make([]classifier.Sample, 4000)
	for i := range samples {
		in := make([]float64, 9)
		for d := range in {
			in[d] = rng.Float64()
		}
		samples[i] = classifier.Sample{In: in, Bad: in[0] < 0.1}
	}
	tab, err := classifier.TrainTable(classifier.DefaultTableConfig(), samples)
	if err != nil {
		b.Fatal(err)
	}
	in := samples[0].In
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tab.Classify(in)
	}
}

// BenchmarkNPUInvoke measures one accelerator invocation (sobel topology).
func BenchmarkNPUInvoke(b *testing.B) {
	rng := mathx.NewRNG(2)
	var samples []nn.Sample
	for i := 0; i < 64; i++ {
		in := make([]float64, 9)
		for d := range in {
			in[d] = rng.Float64()
		}
		samples = append(samples, nn.Sample{In: in, Out: []float64{in[0]}})
	}
	approx, _ := nn.FitApproximator([]int{9, 8, 1}, samples,
		nn.TrainConfig{Epochs: 5, LearningRate: 0.1, BatchSize: 8, Seed: 1}, 1)
	acc := npu.New(approx)
	scratch := acc.NewScratch()
	dst := make([]float64, 1)
	in := samples[0].In
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc.Invoke(in, dst, scratch)
	}
}

// BenchmarkBDICompress measures compressing a 4 KB sparse classifier
// table.
func BenchmarkBDICompress(b *testing.B) {
	rng := mathx.NewRNG(3)
	data := make([]byte, 4096)
	for i := 0; i < 100; i++ {
		data[rng.Intn(len(data))] = byte(rng.Uint64())
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bdipkg.CompressedSize(data)
	}
}

// BenchmarkClopperPearson measures one exact confidence-bound evaluation
// in the paper's regime (235/250).
func BenchmarkClopperPearson(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = stats.ClopperPearsonLower(235, 250, 0.975)
	}
}

// BenchmarkExtKMeans regenerates the kmeans extension campaign.
func BenchmarkExtKMeans(b *testing.B) { runExperiment(b, "ext-kmeans") }

// BenchmarkExtMultiKernel regenerates the multi-function tuple extension.
func BenchmarkExtMultiKernel(b *testing.B) { runExperiment(b, "ext-multi") }

// BenchmarkAblationPredictors regenerates the classifier-mechanism
// comparison including the related-work baselines.
func BenchmarkAblationPredictors(b *testing.B) { runExperiment(b, "abl-predictors") }
