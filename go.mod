module mithra

go 1.22
