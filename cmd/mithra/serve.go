package main

// The serving client commands (DESIGN.md §10):
//
//	mithra decide   -config prog.bin -scale test -seed 7 -decisions offline.jsonl
//	mithra loadgen  -addr 127.0.0.1:7433 -config prog.bin -scale test -seed 7 \
//	                -conns 4 -pipeline 64 -decisions served.jsonl
//
// Both derive the same invocation-input sequence from (benchmark, scale,
// seed) — decide classifies offline with the compiled table classifier,
// loadgen ships the inputs to a mithrad server — and both can write a
// decision journal, so `mithra journal diff offline.jsonl served.jsonl`
// is the end-to-end determinism check: clean exactly when every served
// decision matched the offline replay.

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"mithra/internal/axbench"
	"mithra/internal/bench"
	"mithra/internal/cluster"
	"mithra/internal/core"
	"mithra/internal/dataset"
	"mithra/internal/mathx"
	"mithra/internal/obs"
	"mithra/internal/serve"
)

// scaleFor maps the -scale flag to dataset dimensions.
func scaleFor(scale string) (axbench.Scale, error) {
	switch scale {
	case "test":
		return axbench.TestScale(), nil
	case "medium", "":
		return axbench.MediumScale(), nil
	case "paper":
		return axbench.PaperScale(), nil
	}
	return axbench.Scale{}, usageErrf("unknown scale %q (test|medium|paper)", scale)
}

// loadProgramInputs loads a compiled deployment and synthesizes its
// dataset's invocation inputs in invocation order, running only the
// precise path (no accelerator evaluation — the decisions are the
// server's or the offline classifier's job).
func loadProgramInputs(cfgPath, scale string, seed uint64) (*core.Program, [][]float64, error) {
	if cfgPath == "" {
		return nil, nil, usageErrf("-config is required")
	}
	sc, err := scaleFor(scale)
	if err != nil {
		return nil, nil, err
	}
	blob, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, nil, err
	}
	prog, err := core.LoadProgram(blob)
	if err != nil {
		return nil, nil, err
	}
	in := prog.Bench.GenInput(mathx.NewRNG(seed), sc)
	inputs := make([][]float64, 0, in.Invocations())
	prog.Bench.Run(in, func(kin, kout []float64) {
		inputs = append(inputs, append([]float64(nil), kin...))
		prog.Bench.Precise(kin, kout)
	})
	return prog, inputs, nil
}

// cmdDecide computes the offline decision vector for one dataset — the
// reference a served run is compared against. With -addr/-unix it asks a
// mithrad server instead, stamping every request batch with a wire-v2
// trace ID and (under -trace) journaling a client-to-worker span tree:
// one span per pipelined batch, annotated with the trace ID the server
// echoed back, so `mithra journal show` reconstructs which worker-side
// decisions belong to which client batch.
func cmdDecide(args []string, stdout, stderr io.Writer) int {
	var (
		cfgPath, scale, decisions *string
		addr, unixPath            *string
		seed                      *uint64
		pipeline                  *int
	)
	return command("decide", args, stderr, func(fs *flag.FlagSet, of *obsFlags) {
		cfgPath = fs.String("config", "", "exported deployment file (from 'mithra compile -o')")
		scale = fs.String("scale", "test", "dataset scale: test|medium|paper")
		seed = fs.Uint64("seed", 7, "dataset generation seed")
		decisions = fs.String("decisions", "", "write the decision journal to this file")
		addr = fs.String("addr", "", "ask this mithrad TCP address instead of classifying offline")
		unixPath = fs.String("unix", "", "ask the mithrad on this Unix socket instead of classifying offline")
		pipeline = fs.Int("pipeline", 64, "requests pipelined per traced batch (server mode)")
		of.register(fs)
	}, func(_ *flag.FlagSet, of *obsFlags, lg *obs.Logger) error {
		prog, inputs, err := loadProgramInputs(*cfgPath, *scale, *seed)
		if err != nil {
			return err
		}
		if *addr != "" || *unixPath != "" {
			return decideServed(stdout, of, lg, prog, inputs, *addr, *unixPath, *seed, *pipeline, *decisions)
		}
		ds := serve.NewDecisionSet(prog.Bench.Name())
		precise := 0
		for _, in := range inputs {
			p := prog.Table.Classify(in)
			if p {
				precise++
			}
			ds.Append(p)
		}
		fmt.Fprintf(stdout, "bench      %s (offline, threshold %.6f)\n", prog.Bench.Name(), prog.Threshold)
		fmt.Fprintf(stdout, "decisions  %d (%d precise, %.1f%% invocation rate)\n",
			ds.Len(), precise, 100*float64(ds.Len()-precise)/float64(max(1, ds.Len())))
		fmt.Fprintf(stdout, "digest     %s\n", ds.Digest())
		if *decisions != "" {
			if err := ds.WriteJournal(*decisions, *seed); err != nil {
				return err
			}
			lg.Infof("decision journal written to %s", *decisions)
		}
		return nil
	})
}

// decideServed is cmdDecide's server mode: one connection, pipelined
// batches, every batch stamped with a deterministic nonzero trace ID
// derived from (seed, batch index). Each response must echo its batch's
// trace ID — a mismatch is a protocol failure, which is what makes this
// the end-to-end test of wire-v2 trace propagation.
func decideServed(stdout io.Writer, of *obsFlags, lg *obs.Logger, prog *core.Program,
	inputs [][]float64, addr, unixPath string, seed uint64, pipeline int, decisions string) error {
	if addr != "" && unixPath != "" {
		return usageErrf("need at most one of -addr / -unix")
	}
	if pipeline < 1 {
		return usageErrf("-pipeline must be >= 1")
	}
	network, target := "tcp", addr
	if unixPath != "" {
		network, target = "unix", unixPath
	}
	benchName := prog.Bench.Name()
	o, shutdown, err := of.open(lg, "decide", seed, map[string]any{
		"bench": benchName, "mode": "served", "pipeline": pipeline,
	}, 1)
	if err != nil {
		return err
	}
	runErr := func() error {
		cl, err := serve.Dial(network, target)
		if err != nil {
			return err
		}
		defer cl.Close()
		ds := serve.NewDecisionSet(benchName)
		nPrecise, traced := 0, 0
		for base, batchIdx := 0, uint64(0); base < len(inputs); base, batchIdx = base+pipeline, batchIdx+1 {
			hi := min(base+pipeline, len(inputs))
			// Trace IDs are a pure function of (seed, batch): nonzero by
			// construction, stable across runs.
			traceID := seed<<20 | (batchIdx + 1)
			cl.SetTrace(traceID)
			span := o.StartSpan("decide.batch",
				obs.A("trace_id", traceID), obs.A("base_id", base), obs.A("n", hi-base))
			resps, err := cl.DecideBatch(benchName, uint32(base), inputs[base:hi])
			span.End()
			if err != nil {
				return err
			}
			for _, r := range resps {
				if r.TraceID != traceID {
					return fmt.Errorf("response %d echoed trace %#x, want %#x", r.ID, r.TraceID, traceID)
				}
				traced++
				if r.Precise {
					nPrecise++
				}
				ds.Append(r.Precise)
			}
		}
		fmt.Fprintf(stdout, "bench      %s (served, traced)\n", benchName)
		fmt.Fprintf(stdout, "decisions  %d (%d precise, %d trace-verified)\n", ds.Len(), nPrecise, traced)
		fmt.Fprintf(stdout, "digest     %s\n", ds.Digest())
		if decisions != "" {
			if err := ds.WriteJournal(decisions, seed); err != nil {
				return err
			}
			lg.Infof("decision journal written to %s", decisions)
		}
		return nil
	}()
	shutdown(runErr)
	return runErr
}

// cmdLoadgen replays a dataset's invocation inputs against a mithrad
// server and reports throughput and batch round-trip latency.
func cmdLoadgen(args []string, stdout, stderr io.Writer) int {
	var (
		addr, unixPath, cfgPath, scale *string
		decisions, benchJSON, label    *string
		endpoints, drift               *string
		seed                           *uint64
		conns, pipeline, repeat        *int
		qps                            *float64
		chaos                          *bool
	)
	return command("loadgen", args, stderr, func(fs *flag.FlagSet, of *obsFlags) {
		addr = fs.String("addr", "", "mithrad TCP address (e.g. 127.0.0.1:7433)")
		unixPath = fs.String("unix", "", "mithrad Unix socket path")
		endpoints = fs.String("endpoints", "", "cluster spec file: resolve the consistent-hash ring locally and spread requests across every node (multi-endpoint mode)")
		cfgPath = fs.String("config", "", "the compiled deployment the server loaded (defines the input stream)")
		scale = fs.String("scale", "test", "dataset scale: test|medium|paper")
		seed = fs.Uint64("seed", 7, "dataset generation seed")
		conns = fs.Int("conns", 1, "parallel client connections")
		pipeline = fs.Int("pipeline", 64, "requests pipelined per batch")
		repeat = fs.Int("repeat", 1, "times to replay the input set (load amplification)")
		qps = fs.Float64("qps", 0, "target decisions/sec (0 = as fast as possible)")
		decisions = fs.String("decisions", "", "write the served decision journal to this file (first pass only when -repeat > 1)")
		benchJSON = fs.String("bench-json", "", "append a run row to this BENCH_serve.json file")
		label = fs.String("label", "", "label recorded in the bench row (e.g. workers4)")
		chaos = fs.Bool("chaos", false, "resilient mode: retry across connection faults and server restarts, and re-ask fallback decisions until the classifier answers (chaos testing)")
		drift = fs.String("drift", "", "seeded drift schedule applied to the input stream by global request index, e.g. 'kind=sudden,at=4096,shift=0.3' (see mithra loadgen -drift docs; drifted decisions are not offline-comparable)")
		of.registerLog(fs)
	}, func(_ *flag.FlagSet, _ *obsFlags, lg *obs.Logger) error {
		set := 0
		for _, s := range []string{*addr, *unixPath, *endpoints} {
			if s != "" {
				set++
			}
		}
		if set != 1 {
			return usageErrf("need exactly one of -addr / -unix / -endpoints")
		}
		if *conns < 1 || *pipeline < 1 || *repeat < 1 {
			return usageErrf("-conns, -pipeline, -repeat must be >= 1")
		}
		network, target := "tcp", *addr
		if *unixPath != "" {
			network, target = "unix", *unixPath
		}
		// Multi-endpoint mode: the client resolves the same consistent-hash
		// ring the nodes use and pins a connection per node, so each request
		// lands on its deciding node directly (mis-routed frames would still
		// be forwarded server-side — this just avoids the extra hop).
		var cspec *cluster.Spec
		if *endpoints != "" {
			var err error
			cspec, err = cluster.ParseSpecFile(*endpoints)
			if err != nil {
				return err
			}
			target = fmt.Sprintf("%d-node cluster", len(cspec.Nodes))
			network = "ring"
		}
		prog, inputs, err := loadProgramInputs(*cfgPath, *scale, *seed)
		if err != nil {
			return err
		}
		// Drift mode: the request stream is the dataset transformed by a
		// seeded, replayable schedule — a pure function of (spec, global
		// request index), so two runs (or two worker counts server-side)
		// see byte-identical drifted inputs.
		var dr *dataset.Drift
		if *drift != "" {
			dr, err = dataset.ParseDrift(*drift)
			if err != nil {
				return err
			}
			lg.Infof("drift schedule: %s", dr.String())
		}
		benchName := prog.Bench.Name()
		n := len(inputs)
		total := n * *repeat
		lg.Infof("loadgen: %d invocations x%d over %d conn(s), pipeline %d, to %s %s",
			n, *repeat, *conns, *pipeline, network, target)

		// precise[global] collects decisions by invocation index — slot
		// writes from disjoint ranges, so conns never contend.
		precise := make([]bool, total)
		rtts := make([][]time.Duration, *conns)
		errs := make([]error, *conns)
		rclients := make([]*serve.ResilientClient, *conns)
		routed := make([]*cluster.RoutedClient, *conns)
		fallbacksSeen := make([]int, *conns)
		// Pacing: with C conns each sending P-sized batches, the fleet hits
		// qps when every conn starts a batch each P*C/qps seconds.
		var interval time.Duration
		if *qps > 0 {
			interval = time.Duration(float64(*pipeline) * float64(*conns) / *qps * float64(time.Second))
		}

		// Allocation accounting brackets the whole run: per-decision cost
		// is a whole-process average (floor-divided, so sub-one-per-op
		// noise reads as zero), comparable run over run at fixed settings.
		runtime.GC()
		var mem0, mem1 runtime.MemStats
		runtime.ReadMemStats(&mem0)
		start := time.Now()
		var wg sync.WaitGroup
		for c := 0; c < *conns; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				var decide func(baseID uint32, batch [][]float64) ([]serve.DecideResponse, error)
				var decideOne func(id uint32, in []float64) (*serve.DecideResponse, error)
				if cspec != nil {
					rc, err := cluster.NewRoutedClient(cspec, *chaos,
						serve.RetryConfig{Seed: *seed + uint64(c) + 1})
					if err != nil {
						errs[c] = err
						return
					}
					defer rc.Close()
					routed[c] = rc
					decide = func(baseID uint32, batch [][]float64) ([]serve.DecideResponse, error) {
						return rc.DecideBatch(benchName, baseID, batch)
					}
					decideOne = func(id uint32, in []float64) (*serve.DecideResponse, error) {
						return rc.Decide(benchName, id, in)
					}
				} else if *chaos {
					rcl, err := serve.DialResilient(network, target,
						serve.RetryConfig{Seed: *seed + uint64(c) + 1})
					if err != nil {
						errs[c] = err
						return
					}
					defer rcl.Close()
					rclients[c] = rcl
					decide = func(baseID uint32, batch [][]float64) ([]serve.DecideResponse, error) {
						return rcl.DecideBatch(benchName, baseID, batch)
					}
					decideOne = func(id uint32, in []float64) (*serve.DecideResponse, error) {
						return rcl.Decide(benchName, id, in)
					}
				} else {
					cl, err := serve.Dial(network, target)
					if err != nil {
						errs[c] = err
						return
					}
					defer cl.Close()
					decide = func(baseID uint32, batch [][]float64) ([]serve.DecideResponse, error) {
						return cl.DecideBatch(benchName, baseID, batch)
					}
				}
				next := time.Now()
				// Conn c owns every total-index t with (t/pipeline) % conns == c.
				for base := c * *pipeline; base < total; base += *conns * *pipeline {
					if interval > 0 {
						time.Sleep(time.Until(next))
						next = next.Add(interval)
					}
					hi := min(base+*pipeline, total)
					batch := make([][]float64, hi-base)
					for i := range batch {
						idx := base + i
						if dr != nil {
							batch[i] = dr.Apply(nil, inputs[idx%n], uint64(idx))
						} else {
							batch[i] = inputs[idx%n]
						}
					}
					t0 := time.Now()
					resps, err := decide(uint32(base), batch)
					if err != nil {
						errs[c] = err
						return
					}
					rtts[c] = append(rtts[c], time.Since(t0))
					for i, r := range resps {
						// A fallback answer is quality-safe but not the
						// classifier's decision; in chaos mode re-ask (same ID —
						// decisions are idempotent) until the classifier answers,
						// so the final vector stays offline-comparable. Each
						// re-ask also drives the open breaker toward its
						// half-open probe.
						for attempt := 0; *chaos && r.Fallback && attempt < 512; attempt++ {
							fallbacksSeen[c]++
							nr, err := decideOne(r.ID, batch[i])
							if err != nil {
								errs[c] = err
								return
							}
							r = *nr
						}
						if *chaos && r.Fallback {
							errs[c] = fmt.Errorf("request %d still answered by fallback after 512 re-asks", r.ID)
							return
						}
						precise[base+i] = r.Precise
					}
				}
			}(c)
		}
		wg.Wait()
		elapsed := time.Since(start)
		runtime.ReadMemStats(&mem1)
		for _, err := range errs {
			if err != nil {
				return err
			}
		}

		var all []time.Duration
		for _, r := range rtts {
			all = append(all, r...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		pct := func(p float64) float64 {
			if len(all) == 0 {
				return 0
			}
			return float64(all[int(p*float64(len(all)-1))].Microseconds())
		}
		dps := float64(total) / elapsed.Seconds()

		ds := serve.NewDecisionSet(benchName)
		ds.AppendBools(precise[:n]) // first pass = the offline-comparable vector
		nPrecise := 0
		for _, p := range precise {
			if p {
				nPrecise++
			}
		}
		fmt.Fprintf(stdout, "bench      %s (served)\n", benchName)
		fmt.Fprintf(stdout, "decisions  %d (%d precise) in %.3fs = %.0f decisions/sec\n",
			total, nPrecise, elapsed.Seconds(), dps)
		fmt.Fprintf(stdout, "batch rtt  p50 %.0fus  p99 %.0fus (%d batches of <=%d)\n",
			pct(0.50), pct(0.99), len(all), *pipeline)
		fmt.Fprintf(stdout, "digest     %s\n", ds.Digest())
		if *chaos {
			retries, reconnects, fallbacks := 0, 0, 0
			for c, rcl := range rclients {
				if rcl != nil {
					retries += rcl.Retries
					reconnects += rcl.Reconnects
				}
				if routed[c] != nil {
					rt, rc2, _ := routed[c].Stats()
					retries += rt
					reconnects += rc2
				}
				fallbacks += fallbacksSeen[c]
			}
			fmt.Fprintf(stdout, "chaos      %d retries, %d reconnects, %d fallback answers (all resolved)\n",
				retries, reconnects, fallbacks)
		}

		if *decisions != "" {
			if err := ds.WriteJournal(*decisions, *seed); err != nil {
				return err
			}
			lg.Infof("decision journal written to %s", *decisions)
		}
		if *benchJSON != "" {
			// Shared schema with `mithra bench` (internal/bench): merge
			// replaces the row with the same (label, bench, conns, pipeline)
			// identity and renders deterministically, so re-running at the
			// same settings updates the file in place instead of growing it.
			row := bench.Row{
				Label: *label, Bench: benchName, Conns: *conns, Pipeline: *pipeline,
				Decisions: total, Seconds: elapsed.Seconds(), DecisionsPerSec: dps,
				P50us: pct(0.50), P99us: pct(0.99),
				AllocsPerOp: int64(mem1.Mallocs-mem0.Mallocs) / int64(total),
				BytesPerOp:  int64(mem1.TotalAlloc-mem0.TotalAlloc) / int64(total),
			}
			if err := bench.MergeFile(*benchJSON, row); err != nil {
				return err
			}
			lg.Infof("bench row merged into %s", *benchJSON)
		}
		return nil
	})
}
