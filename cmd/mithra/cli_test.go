package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// mithraCLI invokes run() the way the shell would and returns the exit
// code with captured output.
func mithraCLI(args ...string) (code int, stdout, stderr string) {
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestExitCodesAndStructuredErrors(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		wantCode int
		wantErr  string // substring of stderr ("" = stderr must be empty)
	}{
		{"no args", nil, 2, ""},
		{"unknown command", []string{"bogus"}, 2, `error[usage]: unknown command "bogus"`},
		{"unknown flag", []string{"run", "-no-such-flag"}, 2, "error[usage]: run: flag provided but not defined"},
		{"bad scale", []string{"run", "-scale", "huge"}, 2, `error[usage]: run: unknown scale "huge"`},
		{"bad design", []string{"run", "-scale", "test", "-design", "magic"}, 2, `error[usage]: run: unknown design "magic"`},
		{"exec without config", []string{"exec"}, 2, "error[usage]: exec: -config is required"},
		{"exec missing file", []string{"exec", "-config", "definitely-missing.bin"}, 1, "error[io]: exec:"},
		{"journal no subcommand", []string{"journal"}, 2, "error[usage]: journal: usage:"},
		{"journal bad subcommand", []string{"journal", "frobnicate"}, 2, `error[usage]: journal: unknown journal subcommand "frobnicate"`},
		{"journal show missing file", []string{"journal", "show", "definitely-missing.jsonl"}, 1, "error[io]: journal:"},
		{"help", []string{"help"}, 0, "usage: mithra"},
		{"command help", []string{"compile", "-h"}, 0, "usage: mithra compile"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code, _, stderr := mithraCLI(c.args...)
			if code != c.wantCode {
				t.Errorf("exit = %d, want %d (stderr: %s)", code, c.wantCode, stderr)
			}
			if c.wantErr != "" && !strings.Contains(stderr, c.wantErr) {
				t.Errorf("stderr %q missing %q", stderr, c.wantErr)
			}
		})
	}
}

func TestJSONErrorLine(t *testing.T) {
	code, _, stderr := mithraCLI("run", "-log-json", "-scale", "nope")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	var line struct {
		T, Kind, Msg string
	}
	if err := json.Unmarshal([]byte(strings.TrimSpace(stderr)), &line); err != nil {
		t.Fatalf("stderr is not a JSON line: %q (%v)", stderr, err)
	}
	if line.T != "error" || line.Kind != "usage" {
		t.Errorf("json error line = %+v, want t=error kind=usage", line)
	}
}

func TestListRuns(t *testing.T) {
	code, stdout, stderr := mithraCLI("list")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"benchmarks:", "sobel", "experiments:", "fig6"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

// pipelineArgs runs the full compile+evaluate pipeline at test scale with
// a guarantee the small sample can certify.
func pipelineArgs(journal string, seed uint64, parallelism int) []string {
	return []string{"run", "-bench", "fft", "-scale", "test",
		"-quality", "0.10", "-success", "0.6", "-confidence", "0.9", "-two-sided=false",
		"-seed", fmt.Sprint(seed), "-parallel", fmt.Sprint(parallelism),
		"-trace", "-metrics", "-journal", journal, "-quiet"}
}

// TestPipelineJournalAcceptance is the PR's acceptance test: a full run
// with -trace -metrics emits a journal with at least 5 distinct span
// names and 6 distinct metric names, `journal diff` reports two same-seed
// runs identical even at different worker counts, and a different seed
// is detected as a real difference.
func TestPipelineJournalAcceptance(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.jsonl")
	b := filepath.Join(dir, "b.jsonl")
	other := filepath.Join(dir, "other-seed.jsonl")

	for _, c := range []struct {
		journal     string
		seed        uint64
		parallelism int
	}{{a, 42, 1}, {b, 42, 4}, {other, 7, 1}} {
		code, _, stderr := mithraCLI(pipelineArgs(c.journal, c.seed, c.parallelism)...)
		if code != 0 {
			t.Fatalf("pipeline run (seed=%d par=%d) exit %d: %s", c.seed, c.parallelism, code, stderr)
		}
	}

	spans, metrics := journalInventory(t, a)
	if len(spans) < 5 {
		t.Errorf("journal has %d span names %v, want >= 5", len(spans), spans)
	}
	if len(metrics) < 6 {
		t.Errorf("journal has %d metric names %v, want >= 6", len(metrics), metrics)
	}

	code, stdout, stderr := mithraCLI("journal", "diff", a, b)
	if code != 0 {
		t.Errorf("same-seed diff across worker counts: exit %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "journals identical") {
		t.Errorf("diff output %q missing identical verdict", stdout)
	}

	code, stdout, _ = mithraCLI("journal", "diff", a, other)
	if code != 1 {
		t.Errorf("different-seed diff: exit %d, want 1", code)
	}
	if !strings.Contains(stdout, "line 1") {
		t.Errorf("different-seed diff output %q does not show the run_start difference", stdout)
	}

	// journal show renders the run without error.
	code, stdout, stderr = mithraCLI("journal", "show", a)
	if code != 0 {
		t.Fatalf("journal show: exit %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"run run seed=42", "threshold.search", "counter npu.invocations", "status ok"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("journal show output missing %q", want)
		}
	}
}

// journalInventory returns the distinct span and metric names in a
// journal file.
func journalInventory(t *testing.T, path string) (spans, metrics []string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	spanSet := map[string]bool{}
	metricSet := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var e struct {
			T       string `json:"t"`
			Name    string `json:"name"`
			Metrics *struct {
				Counters []struct {
					Name string `json:"name"`
				} `json:"counters"`
				Gauges []struct {
					Name string `json:"name"`
				} `json:"gauges"`
				Histograms []struct {
					Name string `json:"name"`
				} `json:"histograms"`
			} `json:"metrics"`
		}
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("bad journal line %q: %v", line, err)
		}
		if e.T == "span" {
			spanSet[e.Name] = true
		}
		if e.Metrics != nil {
			for _, c := range e.Metrics.Counters {
				metricSet[c.Name] = true
			}
			for _, g := range e.Metrics.Gauges {
				metricSet[g.Name] = true
			}
			for _, h := range e.Metrics.Histograms {
				metricSet[h.Name] = true
			}
		}
	}
	for s := range spanSet {
		spans = append(spans, s)
	}
	for m := range metricSet {
		metrics = append(metrics, m)
	}
	return spans, metrics
}

// TestQuietSilencesProgress proves -quiet removes progress lines while
// results still print.
func TestQuietSilencesProgress(t *testing.T) {
	dir := t.TempDir()
	code, stdout, stderr := mithraCLI("run", "-bench", "fft", "-scale", "test",
		"-quality", "0.10", "-success", "0.6", "-confidence", "0.9", "-two-sided=false",
		"-journal", filepath.Join(dir, "q.jsonl"), "-trace", "-quiet")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	if stderr != "" {
		t.Errorf("-quiet left stderr output: %q", stderr)
	}
	if !strings.Contains(stdout, "design") {
		t.Errorf("results missing from stdout: %q", stdout)
	}
}
