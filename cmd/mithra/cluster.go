package main

// The cluster inspection commands (DESIGN.md §15):
//
//	mithra cluster ring   -spec cluster.spec [-bench sobel,fft]
//	mithra cluster digest [-decisions out.jsonl -seed 7] <dlog> [<dlog>...]
//
// `ring` resolves the spec's consistent-hash ring exactly as every node
// and routed client does and prints the placement: arc spread per node
// and, per benchmark, the home node plus the slot owners of a split
// benchmark's MISR signature ranges. `digest` merges the nodes' durable
// decision logs into the cluster's per-benchmark DecisionSets (ordered
// by request ID, duplicates deduplicated, gaps rejected) and prints
// each digest — the value the acceptance gate compares against the
// single-node replay.

import (
	"flag"
	"fmt"
	"io"
	"sort"
	"strings"

	"mithra/internal/cluster"
	"mithra/internal/obs"
)

func cmdCluster(args []string, stdout, stderr io.Writer) int {
	return command("cluster", args, stderr, func(fs *flag.FlagSet, of *obsFlags) {
		of.registerLog(fs)
	}, func(fs *flag.FlagSet, _ *obsFlags, lg *obs.Logger) error {
		switch fs.Arg(0) {
		case "ring":
			return clusterRing(stdout, fs.Args()[1:])
		case "digest":
			return clusterDigest(stdout, lg, fs.Args()[1:])
		case "":
			return usageErrf("usage: mithra cluster ring|digest ...")
		}
		return usageErrf("unknown cluster subcommand %q (ring|digest)", fs.Arg(0))
	})
}

// clusterRing prints the placement a spec induces. Flag parsing stopped
// at the positional "ring", so the flags are picked out by hand:
//
//	mithra cluster ring -spec <file> [-bench <name>[,<name>...]]
func clusterRing(stdout io.Writer, rest []string) error {
	specPath, benches := "", ""
	for i := 0; i < len(rest); i++ {
		switch a := rest[i]; a {
		case "-spec", "--spec":
			if i+1 >= len(rest) {
				return usageErrf("-spec needs a cluster spec file")
			}
			i++
			specPath = rest[i]
		case "-bench", "--bench":
			if i+1 >= len(rest) {
				return usageErrf("-bench needs a comma-separated benchmark list")
			}
			i++
			benches = rest[i]
		default:
			return usageErrf("usage: mithra cluster ring -spec <file> [-bench <name>,...]")
		}
	}
	if specPath == "" {
		return usageErrf("usage: mithra cluster ring -spec <file> [-bench <name>,...]")
	}
	spec, err := cluster.ParseSpecFile(specPath)
	if err != nil {
		return err
	}
	router, err := cluster.NewRouter(spec)
	if err != nil {
		return err
	}
	ring := router.Ring()
	fmt.Fprintf(stdout, "cluster    %d node(s), seed %d, %d vnodes, sample-rate %g\n",
		len(spec.Nodes), spec.Seed, spec.VNodes, spec.SampleRate)
	spread := ring.Spread()
	for _, name := range ring.Nodes() {
		fmt.Fprintf(stdout, "node       %-12s %-24s arc %.1f%%\n",
			name, spec.Addr(name), 100*spread[name])
	}
	if benches == "" {
		return nil
	}
	for _, bench := range strings.Split(benches, ",") {
		home := router.Home(bench)
		if slots, split := spec.Splits[bench]; split {
			owners := make([]string, slots)
			for s := range owners {
				owners[s] = ring.OwnerSlot(bench, uint32(s))
			}
			fmt.Fprintf(stdout, "bench      %-12s home %s, split %d: %s\n",
				bench, home, slots, strings.Join(owners, " "))
		} else {
			fmt.Fprintf(stdout, "bench      %-12s home %s\n", bench, home)
		}
	}
	return nil
}

// clusterDigest merges the nodes' decision logs and prints each
// benchmark's decision count and digest:
//
//	mithra cluster digest [-decisions <file>] [-seed <n>] <dlog> [<dlog>...]
//
// -decisions writes the merged decision journal (requires the logs to
// cover exactly one benchmark, since a journal holds one decision set).
func clusterDigest(stdout io.Writer, lg *obs.Logger, rest []string) error {
	decisions, seed := "", uint64(7)
	var paths []string
	for i := 0; i < len(rest); i++ {
		switch a := rest[i]; a {
		case "-decisions", "--decisions":
			if i+1 >= len(rest) {
				return usageErrf("-decisions needs an output file")
			}
			i++
			decisions = rest[i]
		case "-seed", "--seed":
			if i+1 >= len(rest) {
				return usageErrf("-seed needs a value")
			}
			i++
			if _, err := fmt.Sscanf(rest[i], "%d", &seed); err != nil {
				return usageErrf("bad -seed %q", rest[i])
			}
		default:
			paths = append(paths, a)
		}
	}
	if len(paths) == 0 {
		return usageErrf("usage: mithra cluster digest [-decisions <file>] [-seed <n>] <dlog> [<dlog>...]")
	}
	sets, skipped, err := cluster.MergeDecisionLogs(paths)
	if err != nil {
		return err
	}
	for _, s := range skipped {
		lg.Errorf("run", "dlog: skipped %s", s)
	}
	benches := make([]string, 0, len(sets))
	for bench := range sets {
		benches = append(benches, bench)
	}
	sort.Strings(benches)
	for _, bench := range benches {
		ds := sets[bench]
		precise := 0
		for _, b := range ds.Bytes() {
			if b == 'p' {
				precise++
			}
		}
		fmt.Fprintf(stdout, "bench      %s (merged from %d log(s))\n", bench, len(paths))
		fmt.Fprintf(stdout, "decisions  %d (%d precise)\n", ds.Len(), precise)
		fmt.Fprintf(stdout, "digest     %s\n", ds.Digest())
	}
	if decisions != "" {
		if len(benches) != 1 {
			return usageErrf("-decisions needs exactly one benchmark in the merged logs (got %d)", len(benches))
		}
		if err := sets[benches[0]].WriteJournal(decisions, seed); err != nil {
			return err
		}
		lg.Infof("merged decision journal written to %s", decisions)
	}
	return nil
}
