package main

// `mithra watch` is the live guarantee console (DESIGN.md §14): it polls
// a mithrad debug endpoint's Prometheus exposition (/metrics.prom) and
// renders one status table per poll — guarantee state, the current
// Clopper-Pearson bound against the target, input-divergence gauges,
// served decisions, fallback rate, and QPS computed from successive
// polls. `-once` takes a single snapshot (the deterministic-under-test
// mode: no QPS column, no clock-dependent output).

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"mithra/internal/obs"
	"mithra/internal/watch"
)

// pollProm fetches and parses one exposition snapshot.
func pollProm(url string) (map[string]float64, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("watch: %s answered %s", url, resp.Status)
	}
	return watch.ParseProm(resp.Body)
}

func cmdWatch(args []string, stdout, stderr io.Writer) int {
	var (
		addr     *string
		interval *time.Duration
		polls    *int
		once     *bool
	)
	return command("watch", args, stderr, func(fs *flag.FlagSet, of *obsFlags) {
		addr = fs.String("addr", "localhost:6060", "mithrad debug address(es) serving /metrics.prom; comma-separated for a cluster (per-node rows are merged)")
		interval = fs.Duration("interval", time.Second, "poll interval")
		polls = fs.Int("n", 0, "number of polls (0 = until interrupted)")
		once = fs.Bool("once", false, "render one snapshot and exit (no QPS)")
		of.registerLog(fs)
	}, func(_ *flag.FlagSet, _ *obsFlags, _ *obs.Logger) error {
		// Multiple addresses watch a cluster: each node is polled and the
		// per-node rows are merged (counters summed, guarantee fields from
		// the benchmark's home node) into one table per poll.
		var urls []string
		for _, a := range strings.Split(*addr, ",") {
			if a = strings.TrimSpace(a); a != "" {
				urls = append(urls, "http://"+a+"/metrics.prom")
			}
		}
		if len(urls) == 0 {
			return usageErrf("-addr needs at least one address")
		}
		limit := *polls
		if *once {
			limit = 1
		}
		var prevDec map[string]float64
		var prevAt time.Time
		for i := 0; limit == 0 || i < limit; i++ {
			if i > 0 {
				time.Sleep(*interval)
				fmt.Fprintln(stdout)
			}
			perNode := make([][]watch.BenchStatus, 0, len(urls))
			for _, url := range urls {
				metrics, err := pollProm(url)
				if err != nil {
					return err
				}
				perNode = append(perNode, watch.StatusFrom(metrics))
			}
			now := time.Now()
			rows := watch.MergeStatus(perNode)
			if len(rows) == 0 {
				fmt.Fprintln(stdout, "no guarantee monitors armed (start mithrad with -watch)")
			}
			// QPSFrom omits benches without a prior sample (the whole first
			// poll, and any bench that appears mid-watch): their QPS column
			// renders "-" instead of a counter misread as a rate.
			qps := watch.QPSFrom(rows, prevDec, now.Sub(prevAt).Seconds())
			watch.RenderStatus(stdout, rows, qps)
			prevDec = make(map[string]float64, len(rows))
			for _, r := range rows {
				prevDec[r.Bench] = r.Decisions
			}
			prevAt = now
		}
		return nil
	})
}
