package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"mithra/internal/serve"
)

// compiledFixture compiles one test-scale deployment through the real
// CLI and shares the blob across tests (compilation dominates cost).
var compiledFixture = sync.OnceValues(func() ([]byte, error) {
	dir, err := os.MkdirTemp("", "mithra-serve-test")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	out := filepath.Join(dir, "prog.bin")
	code, _, stderr := mithraCLI("compile", "-bench", "fft", "-scale", "test",
		"-quality", "0.10", "-success", "0.6", "-confidence", "0.9", "-two-sided=false",
		"-seed", "42", "-o", out, "-quiet")
	if code != 0 {
		return nil, fmt.Errorf("compile exit %d: %s", code, stderr)
	}
	return os.ReadFile(out)
})

func fixtureFile(t *testing.T) string {
	t.Helper()
	blob, err := compiledFixture()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "prog.bin")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDecideLoadgenUsageErrors(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		wantCode int
		wantErr  string
	}{
		{"decide without config", []string{"decide"}, 2, "error[usage]: decide: -config is required"},
		{"decide bad scale", []string{"decide", "-config", "x.bin", "-scale", "huge"}, 2, "unknown scale"},
		{"decide missing file", []string{"decide", "-config", "definitely-missing.bin"}, 1, "error[io]: decide:"},
		{"loadgen no target", []string{"loadgen", "-config", "x.bin"}, 2, "need exactly one of -addr / -unix"},
		{"loadgen both targets", []string{"loadgen", "-addr", "a", "-unix", "b"}, 2, "need exactly one of -addr / -unix"},
		{"loadgen bad conns", []string{"loadgen", "-addr", "a", "-config", "x.bin", "-conns", "0"}, 2, "must be >= 1"},
		{"loadgen without config", []string{"loadgen", "-addr", "a"}, 2, "-config is required"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code, _, stderr := mithraCLI(c.args...)
			if code != c.wantCode {
				t.Errorf("exit = %d, want %d (stderr: %s)", code, c.wantCode, stderr)
			}
			if !strings.Contains(stderr, c.wantErr) {
				t.Errorf("stderr %q missing %q", stderr, c.wantErr)
			}
		})
	}
}

var digestRe = regexp.MustCompile(`digest\s+(fnv1a:[0-9a-f]{16})`)

// TestServedMatchesOfflineCLI is the CLI-level determinism acceptance
// check: `mithra decide` (offline) and `mithra loadgen` (served, via a
// frozen sampling server) must print the same decision digest, and
// `mithra journal diff` over their decision journals must be clean.
func TestServedMatchesOfflineCLI(t *testing.T) {
	prog := fixtureFile(t)
	dir := t.TempDir()
	offline := filepath.Join(dir, "offline.jsonl")
	served := filepath.Join(dir, "served.jsonl")
	benchJSON := filepath.Join(dir, "BENCH_serve.json")

	// Offline reference.
	code, stdout, stderr := mithraCLI("decide", "-config", prog, "-scale", "test",
		"-seed", "7", "-decisions", offline, "-quiet")
	if code != 0 {
		t.Fatalf("decide exit %d: %s", code, stderr)
	}
	m := digestRe.FindStringSubmatch(stdout)
	if m == nil {
		t.Fatalf("decide output has no digest:\n%s", stdout)
	}
	offlineDigest := m[1]

	// A serving instance with sporadic sampling on but frozen — the
	// configuration whose decisions must equal the offline replay.
	blob, err := compiledFixture()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := serve.LoadSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.NewServer(serve.NewRegistry(snap), serve.Config{
		Workers: 4, SampleRate: 0.25, SampleSeed: 17, Freeze: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck // exits nil on drain
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck // best-effort teardown
	}()

	code, stdout, stderr = mithraCLI("loadgen", "-addr", ln.Addr().String(),
		"-config", prog, "-scale", "test", "-seed", "7", "-conns", "3", "-pipeline", "16",
		"-decisions", served, "-bench-json", benchJSON, "-label", "workers4", "-quiet")
	if code != 0 {
		t.Fatalf("loadgen exit %d: %s", code, stderr)
	}
	m = digestRe.FindStringSubmatch(stdout)
	if m == nil {
		t.Fatalf("loadgen output has no digest:\n%s", stdout)
	}
	if m[1] != offlineDigest {
		t.Fatalf("served digest %s != offline digest %s", m[1], offlineDigest)
	}

	// The decision journals diff clean.
	code, stdout, stderr = mithraCLI("journal", "diff", offline, served)
	if code != 0 {
		t.Fatalf("journal diff exit %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "journals identical") {
		t.Errorf("diff verdict missing from %q", stdout)
	}

	// The bench row landed with sane numbers.
	raw, err := os.ReadFile(benchJSON)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Runs []struct {
			Label           string  `json:"label"`
			Bench           string  `json:"bench"`
			Decisions       int     `json:"decisions"`
			DecisionsPerSec float64 `json:"decisions_per_sec"`
			AllocsPerOp     *int64  `json:"allocs_per_op"`
			BytesPerOp      *int64  `json:"bytes_per_op"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("BENCH_serve.json: %v", err)
	}
	if len(doc.Runs) != 1 || doc.Runs[0].Label != "workers4" || doc.Runs[0].Bench != "fft" ||
		doc.Runs[0].Decisions == 0 || doc.Runs[0].DecisionsPerSec <= 0 {
		t.Fatalf("bench rows = %+v", doc.Runs)
	}
	// The allocation fields are part of the schema even when zero —
	// they are the regression-gated half of the perf trajectory.
	if doc.Runs[0].AllocsPerOp == nil || doc.Runs[0].BytesPerOp == nil {
		t.Fatalf("bench row missing allocs_per_op/bytes_per_op: %s", raw)
	}

	// A second loadgen run with a new identity merges in, sorted into the
	// canonical row order (label asc), rather than clobbering the file.
	code, _, stderr = mithraCLI("loadgen", "-addr", ln.Addr().String(),
		"-config", prog, "-scale", "test", "-seed", "7", "-repeat", "2",
		"-bench-json", benchJSON, "-label", "repeat2", "-quiet")
	if code != 0 {
		t.Fatalf("second loadgen exit %d: %s", code, stderr)
	}
	raw, _ = os.ReadFile(benchJSON)
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Runs) != 2 || doc.Runs[0].Label != "repeat2" || doc.Runs[1].Label != "workers4" {
		t.Fatalf("bench rows after merge = %+v", doc.Runs)
	}

	// Re-running an identity replaces its row in place: the file is a
	// trajectory (one row per configuration), not a log.
	code, _, stderr = mithraCLI("loadgen", "-addr", ln.Addr().String(),
		"-config", prog, "-scale", "test", "-seed", "7", "-repeat", "2",
		"-bench-json", benchJSON, "-label", "repeat2", "-quiet")
	if code != 0 {
		t.Fatalf("third loadgen exit %d: %s", code, stderr)
	}
	raw, _ = os.ReadFile(benchJSON)
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Runs) != 2 {
		t.Fatalf("same-identity rerun grew the file: %+v", doc.Runs)
	}
}
