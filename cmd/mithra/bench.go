package main

// mithra bench — the deterministic performance harness behind the
// committed perf trajectory (DESIGN.md §12):
//
//	mithra bench -out BENCH_serve.json            # regenerate the file
//	mithra bench -smoke -compare BENCH_serve.json # CI regression gate
//
// Without -compare, the measured rows are merged into -out (replacing
// rows with the same identity, deterministic layout). With -compare,
// nothing is written: the fresh run is checked against the committed
// file — allocs/op exactly on hermetic stages, timing by ratio — and a
// violation exits nonzero.

import (
	"flag"
	"fmt"
	"io"

	"mithra/internal/bench"
	"mithra/internal/obs"
)

func cmdBench(args []string, stdout, stderr io.Writer) int {
	var (
		out, compare, label, lintRoot *string
		smoke                         *bool
		seed                          *uint64
		ratio                         *float64
	)
	return command("bench", args, stderr, func(fs *flag.FlagSet, of *obsFlags) {
		out = fs.String("out", "BENCH_serve.json", "bench report to merge results into")
		compare = fs.String("compare", "", "compare against this committed report instead of writing (CI gate)")
		smoke = fs.Bool("smoke", false, "reduced op counts (~10x fewer): same stages, same alloc exactness, noisier timing")
		seed = fs.Uint64("seed", 99, "synthetic workload seed")
		label = fs.String("label", "bench", "label recorded on every row")
		ratio = fs.Float64("ratio", 0, fmt.Sprintf("timing tolerance factor for -compare (0 = default %.0f)", bench.DefaultRatio))
		lintRoot = fs.String("lint-root", "", "module root to time one full lint pass over (lint_repo stage; empty skips it)")
		of.registerLog(fs)
	}, func(_ *flag.FlagSet, _ *obsFlags, lg *obs.Logger) error {
		rows, err := bench.Run(bench.Config{Smoke: *smoke, Seed: *seed, Label: *label, LintRoot: *lintRoot})
		if err != nil {
			return err
		}
		for _, r := range rows {
			if r.DecisionsPerSec > 0 {
				fmt.Fprintf(stdout, "%-24s %10.0f ops/s  p50 %.0fus  p99 %.0fus  %d allocs/op  %d B/op\n",
					r.Stage, r.DecisionsPerSec, r.P50us, r.P99us, r.AllocsPerOp, r.BytesPerOp)
			} else {
				fmt.Fprintf(stdout, "%-24s %10.1f ns/op  %d allocs/op  %d B/op\n",
					r.Stage, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
			}
		}
		if *compare != "" {
			committed, err := bench.ReadFile(*compare)
			if err != nil {
				return err
			}
			// Gate only harness rows (Stage set): loadgen rows in the same
			// file are produced by `mithra loadgen`, not by this run.
			staged := &bench.Report{}
			for _, w := range committed.Runs {
				if w.Stage != "" {
					staged.Merge(w)
				}
			}
			if len(staged.Runs) == 0 {
				return fmt.Errorf("bench: %s has no committed harness rows to compare against", *compare)
			}
			fresh := &bench.Report{}
			// The committed file carries the full-run label; a smoke run
			// measures the same stages, so adopt each committed row's label
			// under its stage identity before comparing.
			for _, r := range rows {
				for _, w := range staged.Runs {
					if w.Stage == r.Stage {
						r.Label = w.Label
					}
				}
				fresh.Merge(r)
			}
			if problems := bench.Compare(staged, fresh, *ratio); len(problems) > 0 {
				for _, p := range problems {
					lg.Errorf("bench", "%s", p)
				}
				return fmt.Errorf("bench: %d perf-trajectory violation(s) against %s", len(problems), *compare)
			}
			lg.Infof("perf trajectory holds against %s (%d rows)", *compare, len(committed.Runs))
			return nil
		}
		if err := bench.MergeFile(*out, rows...); err != nil {
			return err
		}
		lg.Infof("%d rows merged into %s", len(rows), *out)
		return nil
	})
}
