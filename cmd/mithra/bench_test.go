package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestBenchCLISmokeAndCompare drives the bench subcommand the way CI
// does: a smoke run writes the report, a second smoke run gates against
// it, and a doctored regression (an alloc on a hermetic stage) fails the
// gate with a nonzero exit.
func TestBenchCLISmokeAndCompare(t *testing.T) {
	if testing.Short() {
		t.Skip("bench harness run in -short mode")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_serve.json")

	code, stdout, stderr := mithraCLI("bench", "-smoke", "-out", out, "-quiet")
	if code != 0 {
		t.Fatalf("bench exit %d: %s", code, stderr)
	}
	for _, stage := range []string{"decide_steady", "wire_encode", "ring_lookup", "cluster_hop", "rtt_p1", "rtt_p32"} {
		if !strings.Contains(stdout, stage) {
			t.Errorf("bench output missing stage %s:\n%s", stage, stdout)
		}
	}

	var doc struct {
		Runs []struct {
			Stage       string `json:"stage"`
			AllocsPerOp int64  `json:"allocs_per_op"`
		} `json:"runs"`
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Runs) < 8 {
		t.Fatalf("bench wrote %d rows, want >= 8", len(doc.Runs))
	}

	// The gate passes against the file the run itself produced (loose
	// ratio: this is CI's configuration, where timing noise is expected
	// and the allocation contract does the real gating).
	code, _, stderr = mithraCLI("bench", "-smoke", "-compare", out, "-ratio", "50", "-quiet")
	if code != 0 {
		t.Fatalf("bench -compare exit %d: %s", code, stderr)
	}

	// Doctor a regression into the committed file: rewrite decide_steady's
	// allocs_per_op to -1 so the fresh zero-alloc measurement reads as a
	// one-alloc regression against it.
	doctored := doctorAllocs(t, string(raw))
	bad := filepath.Join(dir, "doctored.json")
	if err := os.WriteFile(bad, []byte(doctored), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr = mithraCLI("bench", "-smoke", "-compare", bad, "-ratio", "50", "-quiet")
	if code == 0 {
		t.Fatal("doctored regression passed the compare gate")
	}
	if !strings.Contains(stderr, "allocs/op regressed") {
		t.Fatalf("gate failure does not name the alloc regression: %s", stderr)
	}
}

// doctorAllocs rewrites the decide_steady row's allocs_per_op to -1, so
// a fresh zero-alloc measurement reads as a one-alloc regression.
func doctorAllocs(t *testing.T, raw string) string {
	t.Helper()
	var doc map[string]any
	if err := json.Unmarshal([]byte(raw), &doc); err != nil {
		t.Fatal(err)
	}
	runs, ok := doc["runs"].([]any)
	if !ok {
		t.Fatal("doctored file has no runs")
	}
	found := false
	for _, r := range runs {
		row := r.(map[string]any)
		if row["stage"] == "decide_steady" {
			row["allocs_per_op"] = -1
			found = true
		}
	}
	if !found {
		t.Fatal("decide_steady row not found to doctor")
	}
	out, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}
