// Command mithra drives the MITHRA pipeline from the shell:
//
//	mithra list                            # benchmarks and experiments
//	mithra compile -bench sobel -quality 0.05
//	mithra run -bench sobel -quality 0.05 -design table
//	mithra report -exp fig6 -scale medium
//
// The -scale flag selects test (seconds), medium (the default campaign),
// or paper (Table I input sizes, 250+250 datasets — slow).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mithra"
	"mithra/internal/axbench"
	"mithra/internal/core"
	"mithra/internal/dataset"
	"mithra/internal/experiments"
	"mithra/internal/mathx"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList()
	case "compile":
		err = cmdCompile(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "exec":
		err = cmdExec(os.Args[2:])
	case "report":
		err = cmdReport(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "mithra: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mithra:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: mithra <command> [flags]

commands:
  list      benchmarks and regenerable experiments
  compile   tune the threshold and train classifiers for one benchmark
  run       evaluate a design on unseen datasets
  exec      execute a compiled deployment on real input (e.g. a PGM image)
  report    regenerate the paper's tables and figures

run 'mithra <command> -h' for flags.`)
}

func optionsFor(scale string) (core.Options, error) {
	switch scale {
	case "test":
		return core.TestOptions(), nil
	case "medium", "":
		return core.DefaultOptions(), nil
	case "paper":
		return core.PaperOptions(), nil
	}
	return core.Options{}, fmt.Errorf("unknown scale %q (test|medium|paper)", scale)
}

func cmdList() error {
	fmt.Println("benchmarks:")
	for _, n := range mithra.Benchmarks() {
		b, err := mithra.NewBenchmark(n)
		if err != nil {
			return err
		}
		topo := make([]string, len(b.Topology()))
		for i, t := range b.Topology() {
			topo[i] = fmt.Sprint(t)
		}
		fmt.Printf("  %-14s %-20s metric=%s topology=%s\n",
			n, b.Domain(), b.Metric().Name(), strings.Join(topo, "->"))
	}
	fmt.Println("\nexperiments:")
	for _, r := range experiments.Runners() {
		fmt.Printf("  %-12s %s\n", r.ID, r.Descr)
	}
	return nil
}

// parallelFlag registers the shared -parallel knob: the worker count for
// every pool in the pipeline. Results are bit-identical at any setting;
// the flag only trades wall-clock time for cores.
func parallelFlag(fs *flag.FlagSet) *int {
	return fs.Int("parallel", 0, "worker count for the evaluation pipeline (0 = all cores, 1 = serial)")
}

func guaranteeFlags(fs *flag.FlagSet) (quality, success, confidence *float64, twoSided *bool) {
	quality = fs.Float64("quality", 0.05, "desired final quality loss (e.g. 0.05 for 5%)")
	success = fs.Float64("success", 0.90, "required success rate on unseen datasets")
	confidence = fs.Float64("confidence", 0.95, "confidence level of the guarantee")
	twoSided = fs.Bool("two-sided", true, "use the paper's two-sided interval convention")
	return
}

func cmdCompile(args []string) error {
	fs := flag.NewFlagSet("compile", flag.ExitOnError)
	bench := fs.String("bench", "sobel", "benchmark name")
	scale := fs.String("scale", "medium", "dataset scale: test|medium|paper")
	seed := fs.Uint64("seed", 42, "experiment seed")
	out := fs.String("o", "", "write the exported deployment to this file")
	deltaWalk := fs.Bool("delta-walk", false, "use Algorithm 1's delta-walk instead of bisection")
	par := parallelFlag(fs)
	quality, success, confidence, twoSided := guaranteeFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts, err := optionsFor(*scale)
	if err != nil {
		return err
	}
	opts.Seed = *seed
	opts.UseDeltaWalk = *deltaWalk
	opts.Parallelism = *par
	g := mithra.Guarantee{QualityLoss: *quality, SuccessRate: *success,
		Confidence: *confidence, TwoSided: *twoSided}

	fmt.Printf("compiling %s for %s ...\n", *bench, g)
	dep, err := mithra.Compile(*bench, g, opts)
	if err != nil {
		return err
	}
	fmt.Printf("threshold        %.6f (certified=%v, lower bound %.1f%%)\n",
		dep.Th.Threshold, dep.Th.Certified, dep.Th.LowerBound*100)
	fmt.Printf("compile success  %d/%d datasets\n", dep.Th.Successes, dep.Th.Trials)
	fmt.Printf("oracle invocation rate on compile sets: %.1f%%\n", dep.Th.InvocationRate*100)
	fmt.Printf("table classifier  %d B compressed (%d B raw, density %.2f%%)\n",
		dep.Table.SizeBytes(), dep.Table.UncompressedBytes(), dep.Table.Density()*100)
	topo := make([]string, len(dep.Neural.Topology()))
	for i, t := range dep.Neural.Topology() {
		topo[i] = fmt.Sprint(t)
	}
	fmt.Printf("neural classifier %s, %d B\n", strings.Join(topo, "->"), dep.Neural.SizeBytes())
	fmt.Printf("tuned random filtering rate: %.1f%%\n", dep.RandomRate*100)
	if *out != "" {
		blob, err := dep.Export()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote deployment to %s (%d bytes)\n", *out, len(blob))
	}
	return nil
}

// cmdExec loads an exported deployment and runs it on a user-provided
// input (currently PGM images for the sobel/jpeg benchmarks, synthetic
// inputs otherwise).
func cmdExec(args []string) error {
	fs := flag.NewFlagSet("exec", flag.ExitOnError)
	cfgPath := fs.String("config", "", "exported deployment file (from 'mithra compile -o')")
	inPath := fs.String("in", "", "input PGM image (sobel/jpeg); empty generates a synthetic dataset")
	outPath := fs.String("out", "", "output PGM for image benchmarks")
	designName := fs.String("design", "table", "design: full-approx|table|neural")
	seed := fs.Uint64("seed", 7, "seed for synthetic input generation")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cfgPath == "" {
		return fmt.Errorf("exec: -config is required")
	}
	blob, err := os.ReadFile(*cfgPath)
	if err != nil {
		return err
	}
	prog, err := core.LoadProgram(blob)
	if err != nil {
		return err
	}
	design, err := parseDesign(*designName)
	if err != nil {
		return err
	}

	var input mithra.Input
	var imgDims [2]int
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			return err
		}
		im, err := dataset.ReadPGM(f)
		f.Close()
		if err != nil {
			return err
		}
		switch prog.Bench.Name() {
		case "sobel":
			input = mithra.NewImageInput(im)
			imgDims = [2]int{im.W, im.H}
		case "jpeg":
			input, err = mithra.NewJPEGInput(im)
			if err != nil {
				return err
			}
			imgDims = [2]int{im.W &^ 7, im.H &^ 7}
		default:
			return fmt.Errorf("exec: -in PGM input only applies to sobel/jpeg, not %s", prog.Bench.Name())
		}
	} else {
		input = prog.Bench.GenInput(mathx.NewRNG(*seed), axbench.MediumScale())
	}

	out, st, err := prog.Run(input, design)
	if err != nil {
		return err
	}
	fmt.Printf("benchmark       %s (%s)\n", prog.Bench.Name(), design)
	fmt.Printf("invocations     %d (%d fell back to precise)\n", st.Invocations, st.Fallbacks)
	fmt.Printf("quality loss    %.2f%% (guarantee %s met: %v)\n",
		st.QualityLoss*100, prog.G, st.MetGuarantee)
	fmt.Printf("modeled gains   %.2fx speedup, %.2fx energy\n", st.Speedup, st.EnergyReduction)

	if *outPath != "" && imgDims[0] > 0 {
		im := dataset.NewImage(imgDims[0], imgDims[1])
		copy(im.Pix, out)
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := im.WritePGM(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *outPath)
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	bench := fs.String("bench", "sobel", "benchmark name")
	scale := fs.String("scale", "medium", "dataset scale: test|medium|paper")
	seed := fs.Uint64("seed", 42, "experiment seed")
	designName := fs.String("design", "table", "design: full-approx|oracle|table|neural|random|table-sw|neural-sw")
	par := parallelFlag(fs)
	quality, success, confidence, twoSided := guaranteeFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts, err := optionsFor(*scale)
	if err != nil {
		return err
	}
	opts.Seed = *seed
	opts.Parallelism = *par
	g := mithra.Guarantee{QualityLoss: *quality, SuccessRate: *success,
		Confidence: *confidence, TwoSided: *twoSided}

	design, err := parseDesign(*designName)
	if err != nil {
		return err
	}
	dep, err := mithra.Compile(*bench, g, opts)
	if err != nil {
		return err
	}
	res := dep.EvaluateValidation(design)
	fmt.Printf("design            %s on %d unseen datasets\n", design, len(res.Qualities))
	fmt.Printf("quality successes %d/%d (certified lower bound %.1f%%, guarantee %s: %v)\n",
		res.Successes, len(res.Qualities), res.CertifiedLower*100, g, res.Certified)
	fmt.Printf("invocation rate   %.1f%%\n", res.InvocationRate*100)
	fmt.Printf("speedup           %.2fx\n", res.Speedup)
	fmt.Printf("energy reduction  %.2fx\n", res.EnergyReduction)
	fmt.Printf("EDP improvement   %.2fx\n", res.EDPImprovement)
	if design == mithra.DesignTable || design == mithra.DesignNeural {
		fmt.Printf("false decisions   FP %.1f%%  FN %.1f%%\n", res.FPRate*100, res.FNRate*100)
	}
	return nil
}

func parseDesign(s string) (mithra.Design, error) {
	switch s {
	case "full-approx", "none":
		return mithra.DesignNone, nil
	case "oracle":
		return mithra.DesignOracle, nil
	case "table":
		return mithra.DesignTable, nil
	case "neural":
		return mithra.DesignNeural, nil
	case "random":
		return mithra.DesignRandom, nil
	case "table-sw":
		return mithra.DesignTableSW, nil
	case "neural-sw":
		return mithra.DesignNeuralSW, nil
	}
	return 0, fmt.Errorf("unknown design %q", s)
}

func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	scale := fs.String("scale", "medium", "dataset scale: test|medium|paper")
	exp := fs.String("exp", "", "single experiment id (default: all)")
	seed := fs.Uint64("seed", 42, "experiment seed")
	benches := fs.String("benchmarks", "", "comma-separated benchmark subset (default: all)")
	par := parallelFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts, err := optionsFor(*scale)
	if err != nil {
		return err
	}
	opts.Seed = *seed
	opts.Parallelism = *par
	cfg := mithra.DefaultReportConfig()
	cfg.Opts = opts
	if *scale == "test" {
		// Two dozen datasets cannot certify 90% at 95% confidence; scale
		// the guarantee with the sample size as experiments.TestConfig
		// does.
		cfg.SuccessRate = 0.6
		cfg.Confidence = 0.9
		cfg.TwoSided = false
	}
	if *benches != "" {
		cfg.Benchmarks = strings.Split(*benches, ",")
	}
	if *exp == "" {
		return mithra.Report(cfg, os.Stdout)
	}
	return mithra.Report(cfg, os.Stdout, *exp)
}
