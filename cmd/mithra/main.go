// Command mithra drives the MITHRA pipeline from the shell:
//
//	mithra list                            # benchmarks and experiments
//	mithra compile -bench sobel -quality 0.05
//	mithra run -bench sobel -quality 0.05 -design table
//	mithra report -exp fig6 -scale medium
//	mithra journal diff a.jsonl b.jsonl    # compare two run journals
//
// The -scale flag selects test (seconds), medium (the default campaign),
// or paper (Table I input sizes, 250+250 datasets — slow).
//
// Observability (DESIGN.md §9): the pipeline commands take -trace and
// -metrics to collect spans and metrics into a JSONL run journal
// (-journal chooses the file), -debug-addr to serve pprof/expvar/metrics
// over HTTP, and -quiet/-v/-log-json to control progress output. Errors
// print as structured error[kind] lines and map to exit codes: 0 success,
// 1 runtime failure, 2 usage.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	iofs "io/fs"
	"os"
	"runtime"
	"runtime/debug"
	"strings"

	"mithra"
	"mithra/internal/axbench"
	"mithra/internal/core"
	"mithra/internal/dataset"
	"mithra/internal/experiments"
	"mithra/internal/mathx"
	"mithra/internal/obs"
	"mithra/internal/parallel"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches a command line and returns the process exit code. It is
// the testable entry point: everything the binary does flows through the
// writers, and no path calls os.Exit.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	rest := args[1:]
	switch args[0] {
	case "list":
		return command("list", rest, stderr, nil,
			func(_ *flag.FlagSet, _ *obsFlags, _ *obs.Logger) error { return cmdList(stdout) })
	case "compile":
		return cmdCompile(rest, stdout, stderr)
	case "run":
		return cmdRun(rest, stdout, stderr)
	case "exec":
		return cmdExec(rest, stdout, stderr)
	case "report":
		return cmdReport(rest, stdout, stderr)
	case "journal":
		return cmdJournal(rest, stdout, stderr)
	case "decide":
		return cmdDecide(rest, stdout, stderr)
	case "loadgen":
		return cmdLoadgen(rest, stdout, stderr)
	case "watch":
		return cmdWatch(rest, stdout, stderr)
	case "cluster":
		return cmdCluster(rest, stdout, stderr)
	case "bench":
		return cmdBench(rest, stdout, stderr)
	case "-h", "--help", "help":
		usage(stderr)
		return 0
	}
	obs.NewLogger(stderr, "mithra", obs.LevelNormal, false).
		Errorf("usage", "unknown command %q (run 'mithra help')", args[0])
	return 2
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: mithra <command> [flags]

commands:
  list      benchmarks and regenerable experiments
  compile   tune the threshold and train classifiers for one benchmark
  run       evaluate a design on unseen datasets
  exec      execute a compiled deployment on real input (e.g. a PGM image)
  report    regenerate the paper's tables and figures
  journal   pretty-print (show) or compare (diff) run journals
  decide    compute a dataset's offline decision vector and journal
  loadgen   replay a dataset against a mithrad server and measure it
  watch     poll a mithrad's /metrics.prom and render the guarantee status table
  cluster   inspect a cluster spec's ring placement or merge node decision logs
  bench     run the perf harness and update or gate BENCH_serve.json

run 'mithra <command> -h' for flags.`)
}

// exitErr carries a failure's exit code and structured-error kind.
type exitErr struct {
	code int
	kind string
	err  error
}

func (e *exitErr) Error() string { return e.err.Error() }
func (e *exitErr) Unwrap() error { return e.err }

// usageErrf builds a bad-invocation error (exit 2, kind "usage").
func usageErrf(format string, a ...any) error {
	return &exitErr{code: 2, kind: "usage", err: fmt.Errorf(format, a...)}
}

// classify maps an error to its structured kind and exit code: explicit
// exitErr wins, filesystem failures are "io", everything else is a
// pipeline failure ("run").
func classify(err error) (kind string, code int) {
	var xe *exitErr
	if errors.As(err, &xe) {
		return xe.kind, xe.code
	}
	if errors.Is(err, iofs.ErrNotExist) || errors.Is(err, iofs.ErrPermission) {
		return "io", 1
	}
	return "run", 1
}

// obsFlags holds the shared observability flag values (DESIGN.md §9).
type obsFlags struct {
	trace     bool
	metrics   bool
	journal   string
	debugAddr string
	quiet     bool
	verbose   bool
	logJSON   bool
}

// registerLog adds the logging flags every subcommand supports.
func (of *obsFlags) registerLog(fs *flag.FlagSet) {
	fs.BoolVar(&of.quiet, "quiet", false, "suppress progress output (errors still print)")
	fs.BoolVar(&of.verbose, "v", false, "verbose progress output")
	fs.BoolVar(&of.logJSON, "log-json", false, "emit progress and errors as JSON lines")
}

// register adds the full observability flag set for pipeline commands.
func (of *obsFlags) register(fs *flag.FlagSet) {
	of.registerLog(fs)
	fs.BoolVar(&of.trace, "trace", false, "collect tracing spans into the run journal")
	fs.BoolVar(&of.metrics, "metrics", false, "collect pipeline metrics into the run journal")
	fs.StringVar(&of.journal, "journal", "", "run journal path (default mithra-journal.jsonl when -trace/-metrics is set)")
	fs.StringVar(&of.debugAddr, "debug-addr", "", "serve pprof/expvar/metrics on this address (e.g. localhost:6060)")
}

func (of *obsFlags) level() obs.Level {
	switch {
	case of.quiet:
		return obs.LevelQuiet
	case of.verbose:
		return obs.LevelVerbose
	}
	return obs.LevelNormal
}

func (of *obsFlags) logger(stderr io.Writer) *obs.Logger {
	return obs.NewLogger(stderr, "mithra", of.level(), of.logJSON)
}

// open assembles the run's observability bundle: journal, tracer,
// registry, pool hook, debug endpoint, and the root "run" span. The
// returned Obs is scoped under that span; the returned shutdown function
// must be called with the command's final error to drain and close
// everything.
func (of *obsFlags) open(lg *obs.Logger, cmd string, seed uint64,
	config map[string]any, workers int) (*obs.Obs, func(error), error) {
	journal := of.journal
	if journal == "" && (of.trace || of.metrics) {
		journal = "mithra-journal.jsonl"
	}
	o, err := obs.New(obs.Options{
		Trace:       of.trace,
		Metrics:     of.metrics,
		JournalPath: journal,
		Log:         lg,
	})
	if err != nil {
		return nil, nil, err
	}
	if of.metrics {
		reg := o.Metrics()
		parallel.SetPoolHook(&parallel.PoolHook{Pool: func(tasks int) {
			reg.Counter("parallel.pools").Inc()
			reg.Counter("parallel.tasks").Add(int64(tasks))
		}})
	}
	var dbg *obs.DebugServer
	if of.debugAddr != "" {
		dbg, err = obs.StartDebug(of.debugAddr, o.Metrics())
		if err != nil {
			o.Close(err)
			return nil, nil, err
		}
		lg.Infof("debug endpoint: http://%s/debug/pprof/ (metrics at /metrics)", dbg.Addr())
	}
	o.RunStart(cmd, seed, config, runtimeBlock(workers))
	runSpan := o.StartSpan("run", obs.A("cmd", cmd))
	shutdown := func(runErr error) {
		runSpan.End()
		if of.metrics {
			parallel.SetPoolHook(nil)
		}
		if dbg != nil {
			dbg.Close()
		}
		if err := o.Close(runErr); err != nil {
			lg.Errorf("io", "%v", err)
		} else if journal != "" {
			lg.Infof("journal written to %s", journal)
		}
	}
	return o.Scope(runSpan), shutdown, nil
}

// runtimeBlock describes the environment of a run. It lives in the
// journal's runtime field, which `mithra journal diff` ignores — worker
// counts and toolchains may differ between runs whose results must not.
func runtimeBlock(workers int) map[string]any {
	m := map[string]any{
		"go":         runtime.Version(),
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"workers":    parallel.Workers(workers),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				m["vcs"] = s.Value
			}
		}
	}
	return m
}

// command wires the plumbing shared by every subcommand: flag parsing
// with -h support, the leveled logger, structured error reporting, and
// exit-code mapping. setup registers command-specific flags (nil for
// none); body runs the command.
func command(name string, args []string, stderr io.Writer,
	setup func(fs *flag.FlagSet, of *obsFlags),
	body func(fs *flag.FlagSet, of *obsFlags, lg *obs.Logger) error) int {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	fs.Usage = func() {}
	var of obsFlags
	if setup != nil {
		setup(fs, &of)
	} else {
		of.registerLog(fs)
	}
	err := fs.Parse(args)
	if errors.Is(err, flag.ErrHelp) {
		fmt.Fprintf(stderr, "usage: mithra %s [flags]\nflags:\n", name)
		fs.SetOutput(stderr)
		fs.PrintDefaults()
		return 0
	}
	lg := of.logger(stderr)
	if err != nil {
		lg.Errorf("usage", "%s: %v", name, err)
		return 2
	}
	if err := body(fs, &of, lg); err != nil {
		kind, code := classify(err)
		lg.Errorf(kind, "%s: %v", name, err)
		return code
	}
	return 0
}

func optionsFor(scale string) (core.Options, error) {
	switch scale {
	case "test":
		return core.TestOptions(), nil
	case "medium", "":
		return core.DefaultOptions(), nil
	case "paper":
		return core.PaperOptions(), nil
	}
	return core.Options{}, usageErrf("unknown scale %q (test|medium|paper)", scale)
}

func cmdList(stdout io.Writer) error {
	fmt.Fprintln(stdout, "benchmarks:")
	for _, n := range mithra.Benchmarks() {
		b, err := mithra.NewBenchmark(n)
		if err != nil {
			return err
		}
		topo := make([]string, len(b.Topology()))
		for i, t := range b.Topology() {
			topo[i] = fmt.Sprint(t)
		}
		fmt.Fprintf(stdout, "  %-14s %-20s metric=%s topology=%s\n",
			n, b.Domain(), b.Metric().Name(), strings.Join(topo, "->"))
	}
	fmt.Fprintln(stdout, "\nexperiments:")
	for _, r := range experiments.Runners() {
		fmt.Fprintf(stdout, "  %-12s %s\n", r.ID, r.Descr)
	}
	return nil
}

// parallelFlag registers the shared -parallel knob: the worker count for
// every pool in the pipeline. Results are bit-identical at any setting;
// the flag only trades wall-clock time for cores.
func parallelFlag(fs *flag.FlagSet) *int {
	return fs.Int("parallel", 0, "worker count for the evaluation pipeline (0 = all cores, 1 = serial)")
}

func guaranteeFlags(fs *flag.FlagSet) (quality, success, confidence *float64, twoSided *bool) {
	quality = fs.Float64("quality", 0.05, "desired final quality loss (e.g. 0.05 for 5%)")
	success = fs.Float64("success", 0.90, "required success rate on unseen datasets")
	confidence = fs.Float64("confidence", 0.95, "confidence level of the guarantee")
	twoSided = fs.Bool("two-sided", true, "use the paper's two-sided interval convention")
	return
}

func cmdCompile(args []string, stdout, stderr io.Writer) int {
	var (
		bench, scale, out            *string
		seed                         *uint64
		deltaWalk                    *bool
		par                          *int
		quality, success, confidence *float64
		twoSided                     *bool
	)
	return command("compile", args, stderr, func(fs *flag.FlagSet, of *obsFlags) {
		bench = fs.String("bench", "sobel", "benchmark name")
		scale = fs.String("scale", "medium", "dataset scale: test|medium|paper")
		seed = fs.Uint64("seed", 42, "experiment seed")
		out = fs.String("o", "", "write the exported deployment to this file")
		deltaWalk = fs.Bool("delta-walk", false, "use Algorithm 1's delta-walk instead of bisection")
		par = parallelFlag(fs)
		quality, success, confidence, twoSided = guaranteeFlags(fs)
		of.register(fs)
	}, func(_ *flag.FlagSet, of *obsFlags, lg *obs.Logger) error {
		opts, err := optionsFor(*scale)
		if err != nil {
			return err
		}
		opts.Seed = *seed
		opts.UseDeltaWalk = *deltaWalk
		opts.Parallelism = *par
		g := mithra.Guarantee{QualityLoss: *quality, SuccessRate: *success,
			Confidence: *confidence, TwoSided: *twoSided}

		o, shutdown, err := of.open(lg, "compile", *seed, map[string]any{
			"bench": *bench, "scale": *scale, "quality": *quality,
			"success": *success, "confidence": *confidence, "two_sided": *twoSided,
			"delta_walk": *deltaWalk,
		}, *par)
		if err != nil {
			return err
		}
		opts.Obs = o

		lg.Infof("compiling %s for %s ...", *bench, g)
		dep, err := mithra.Compile(*bench, g, opts)
		if err != nil {
			shutdown(err)
			return err
		}
		o.Gauge("threshold.value").Set(dep.Th.Threshold)
		fmt.Fprintf(stdout, "threshold        %.6f (certified=%v, lower bound %.1f%%)\n",
			dep.Th.Threshold, dep.Th.Certified, dep.Th.LowerBound*100)
		fmt.Fprintf(stdout, "compile success  %d/%d datasets\n", dep.Th.Successes, dep.Th.Trials)
		fmt.Fprintf(stdout, "oracle invocation rate on compile sets: %.1f%%\n", dep.Th.InvocationRate*100)
		fmt.Fprintf(stdout, "table classifier  %d B compressed (%d B raw, density %.2f%%)\n",
			dep.Table.SizeBytes(), dep.Table.UncompressedBytes(), dep.Table.Density()*100)
		topo := make([]string, len(dep.Neural.Topology()))
		for i, t := range dep.Neural.Topology() {
			topo[i] = fmt.Sprint(t)
		}
		fmt.Fprintf(stdout, "neural classifier %s, %d B\n", strings.Join(topo, "->"), dep.Neural.SizeBytes())
		fmt.Fprintf(stdout, "tuned random filtering rate: %.1f%%\n", dep.RandomRate*100)
		if *out != "" {
			blob, err := dep.Export()
			if err != nil {
				shutdown(err)
				return err
			}
			if err := os.WriteFile(*out, blob, 0o644); err != nil {
				shutdown(err)
				return err
			}
			lg.Infof("wrote deployment to %s (%d bytes)", *out, len(blob))
		}
		shutdown(nil)
		return nil
	})
}

func cmdRun(args []string, stdout, stderr io.Writer) int {
	var (
		bench, scale, designName     *string
		seed                         *uint64
		par                          *int
		quality, success, confidence *float64
		twoSided                     *bool
	)
	return command("run", args, stderr, func(fs *flag.FlagSet, of *obsFlags) {
		bench = fs.String("bench", "sobel", "benchmark name")
		scale = fs.String("scale", "medium", "dataset scale: test|medium|paper")
		seed = fs.Uint64("seed", 42, "experiment seed")
		designName = fs.String("design", "table", "design: full-approx|oracle|table|neural|random|table-sw|neural-sw")
		par = parallelFlag(fs)
		quality, success, confidence, twoSided = guaranteeFlags(fs)
		of.register(fs)
	}, func(_ *flag.FlagSet, of *obsFlags, lg *obs.Logger) error {
		opts, err := optionsFor(*scale)
		if err != nil {
			return err
		}
		opts.Seed = *seed
		opts.Parallelism = *par
		g := mithra.Guarantee{QualityLoss: *quality, SuccessRate: *success,
			Confidence: *confidence, TwoSided: *twoSided}
		design, err := parseDesign(*designName)
		if err != nil {
			return err
		}

		o, shutdown, err := of.open(lg, "run", *seed, map[string]any{
			"bench": *bench, "scale": *scale, "design": *designName,
			"quality": *quality, "success": *success,
			"confidence": *confidence, "two_sided": *twoSided,
		}, *par)
		if err != nil {
			return err
		}
		opts.Obs = o

		lg.Infof("compiling %s for %s ...", *bench, g)
		dep, err := mithra.Compile(*bench, g, opts)
		if err != nil {
			shutdown(err)
			return err
		}
		o.Gauge("threshold.value").Set(dep.Th.Threshold)
		lg.Infof("evaluating %s on %d unseen datasets ...", design, len(dep.Ctx.Validate))
		res := dep.EvaluateValidation(design)
		fmt.Fprintf(stdout, "design            %s on %d unseen datasets\n", design, len(res.Qualities))
		fmt.Fprintf(stdout, "quality successes %d/%d (certified lower bound %.1f%%, guarantee %s: %v)\n",
			res.Successes, len(res.Qualities), res.CertifiedLower*100, g, res.Certified)
		fmt.Fprintf(stdout, "invocation rate   %.1f%%\n", res.InvocationRate*100)
		fmt.Fprintf(stdout, "speedup           %.2fx\n", res.Speedup)
		fmt.Fprintf(stdout, "energy reduction  %.2fx\n", res.EnergyReduction)
		fmt.Fprintf(stdout, "EDP improvement   %.2fx\n", res.EDPImprovement)
		if design == mithra.DesignTable || design == mithra.DesignNeural {
			fmt.Fprintf(stdout, "false decisions   FP %.1f%%  FN %.1f%%\n", res.FPRate*100, res.FNRate*100)
		}
		shutdown(nil)
		return nil
	})
}

// cmdExec loads an exported deployment and runs it on a user-provided
// input (currently PGM images for the sobel/jpeg benchmarks, synthetic
// inputs otherwise).
func cmdExec(args []string, stdout, stderr io.Writer) int {
	var (
		cfgPath, inPath, outPath, designName *string
		seed                                 *uint64
	)
	return command("exec", args, stderr, func(fs *flag.FlagSet, of *obsFlags) {
		cfgPath = fs.String("config", "", "exported deployment file (from 'mithra compile -o')")
		inPath = fs.String("in", "", "input PGM image (sobel/jpeg); empty generates a synthetic dataset")
		outPath = fs.String("out", "", "output PGM for image benchmarks")
		designName = fs.String("design", "table", "design: full-approx|table|neural")
		seed = fs.Uint64("seed", 7, "seed for synthetic input generation")
		of.registerLog(fs)
	}, func(_ *flag.FlagSet, _ *obsFlags, lg *obs.Logger) error {
		if *cfgPath == "" {
			return usageErrf("-config is required")
		}
		blob, err := os.ReadFile(*cfgPath)
		if err != nil {
			return err
		}
		prog, err := core.LoadProgram(blob)
		if err != nil {
			return err
		}
		design, err := parseDesign(*designName)
		if err != nil {
			return err
		}

		var input mithra.Input
		var imgDims [2]int
		if *inPath != "" {
			f, err := os.Open(*inPath)
			if err != nil {
				return err
			}
			im, err := dataset.ReadPGM(f)
			f.Close()
			if err != nil {
				return err
			}
			switch prog.Bench.Name() {
			case "sobel":
				input = mithra.NewImageInput(im)
				imgDims = [2]int{im.W, im.H}
			case "jpeg":
				input, err = mithra.NewJPEGInput(im)
				if err != nil {
					return err
				}
				imgDims = [2]int{im.W &^ 7, im.H &^ 7}
			default:
				return usageErrf("-in PGM input only applies to sobel/jpeg, not %s", prog.Bench.Name())
			}
		} else {
			input = prog.Bench.GenInput(mathx.NewRNG(*seed), axbench.MediumScale())
		}

		out, st, err := prog.Run(input, design)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "benchmark       %s (%s)\n", prog.Bench.Name(), design)
		fmt.Fprintf(stdout, "invocations     %d (%d fell back to precise)\n", st.Invocations, st.Fallbacks)
		fmt.Fprintf(stdout, "quality loss    %.2f%% (guarantee %s met: %v)\n",
			st.QualityLoss*100, prog.G, st.MetGuarantee)
		fmt.Fprintf(stdout, "modeled gains   %.2fx speedup, %.2fx energy\n", st.Speedup, st.EnergyReduction)

		if *outPath != "" && imgDims[0] > 0 {
			im := dataset.NewImage(imgDims[0], imgDims[1])
			copy(im.Pix, out)
			f, err := os.Create(*outPath)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := im.WritePGM(f); err != nil {
				return err
			}
			lg.Infof("wrote %s", *outPath)
		}
		return nil
	})
}

func parseDesign(s string) (mithra.Design, error) {
	switch s {
	case "full-approx", "none":
		return mithra.DesignNone, nil
	case "oracle":
		return mithra.DesignOracle, nil
	case "table":
		return mithra.DesignTable, nil
	case "neural":
		return mithra.DesignNeural, nil
	case "random":
		return mithra.DesignRandom, nil
	case "table-sw":
		return mithra.DesignTableSW, nil
	case "neural-sw":
		return mithra.DesignNeuralSW, nil
	}
	return 0, usageErrf("unknown design %q", s)
}

func cmdReport(args []string, stdout, stderr io.Writer) int {
	var (
		scale, exp, benches *string
		seed                *uint64
		par                 *int
	)
	return command("report", args, stderr, func(fs *flag.FlagSet, of *obsFlags) {
		scale = fs.String("scale", "medium", "dataset scale: test|medium|paper")
		exp = fs.String("exp", "", "single experiment id (default: all)")
		seed = fs.Uint64("seed", 42, "experiment seed")
		benches = fs.String("benchmarks", "", "comma-separated benchmark subset (default: all)")
		par = parallelFlag(fs)
		of.register(fs)
	}, func(_ *flag.FlagSet, of *obsFlags, lg *obs.Logger) error {
		opts, err := optionsFor(*scale)
		if err != nil {
			return err
		}
		opts.Seed = *seed
		opts.Parallelism = *par
		cfg := mithra.DefaultReportConfig()
		cfg.Opts = opts
		if *scale == "test" {
			// Two dozen datasets cannot certify 90% at 95% confidence; scale
			// the guarantee with the sample size as experiments.TestConfig
			// does.
			cfg.SuccessRate = 0.6
			cfg.Confidence = 0.9
			cfg.TwoSided = false
		}
		if *benches != "" {
			cfg.Benchmarks = strings.Split(*benches, ",")
		}

		o, shutdown, err := of.open(lg, "report", *seed, map[string]any{
			"scale": *scale, "exp": *exp, "benchmarks": *benches,
		}, *par)
		if err != nil {
			return err
		}
		cfg.Opts.Obs = o

		if *exp == "" {
			err = mithra.Report(cfg, stdout)
		} else {
			err = mithra.Report(cfg, stdout, *exp)
		}
		shutdown(err)
		return err
	})
}

// cmdJournal inspects run journals: `mithra journal show <file>` renders
// one, `mithra journal diff <a> <b>` compares two with the volatile
// fields (timestamps, durations, runtime block) ignored.
func cmdJournal(args []string, stdout, stderr io.Writer) int {
	return command("journal", args, stderr, func(fs *flag.FlagSet, of *obsFlags) {
		of.registerLog(fs)
	}, func(fs *flag.FlagSet, _ *obsFlags, lg *obs.Logger) error {
		switch fs.Arg(0) {
		case "show":
			// Flag parsing stops at the positional "show", so the filter
			// flag is picked out of the remaining args by hand:
			//   mithra journal show [-notes <name>] <file>
			notes, notesOnly := "", false
			var files []string
			rest := fs.Args()[1:]
			for i := 0; i < len(rest); i++ {
				switch a := rest[i]; a {
				case "-notes", "--notes":
					if i+1 >= len(rest) {
						return usageErrf("-notes needs a note name (or \"\" for all notes)")
					}
					i++
					notes, notesOnly = rest[i], true
				default:
					files = append(files, a)
				}
			}
			if len(files) != 1 {
				return usageErrf("usage: mithra journal show [-notes <name>] <file>")
			}
			entries, err := obs.ReadJournalFile(files[0])
			if err != nil {
				return err
			}
			if notesOnly {
				obs.RenderNotes(stdout, entries, notes)
			} else {
				obs.RenderJournal(stdout, entries)
			}
			return nil
		case "diff":
			if fs.NArg() != 3 {
				return usageErrf("usage: mithra journal diff <a> <b>")
			}
			a, err := obs.ReadJournalFile(fs.Arg(1))
			if err != nil {
				return err
			}
			b, err := obs.ReadJournalFile(fs.Arg(2))
			if err != nil {
				return err
			}
			diffs := obs.DiffJournals(a, b)
			if len(diffs) == 0 {
				fmt.Fprintf(stdout, "journals identical: %d events (timestamps and runtime ignored)\n", len(a))
				return nil
			}
			for _, d := range diffs {
				fmt.Fprintln(stdout, d)
			}
			return &exitErr{code: 1, kind: "run",
				err: fmt.Errorf("journals differ: %d difference(s)", len(diffs))}
		case "":
			return usageErrf("usage: mithra journal show|diff ...")
		}
		return usageErrf("unknown journal subcommand %q (show|diff)", fs.Arg(0))
	})
}
