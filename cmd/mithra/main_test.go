package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"mithra"
	"mithra/internal/core"
)

var update = flag.Bool("update", false, "rewrite golden files with the current output")

// TestReportGolden pins the rendered output of the report command's code
// path (mithra.Report, exactly what cmdReport invokes) at test scale on a
// single benchmark. The pipeline is deterministic by construction — seeded
// RNG streams and the parallel engine's bit-identical guarantee — so the
// full report text, numbers included, is stable and diffable.
func TestReportGolden(t *testing.T) {
	cfg := mithra.DefaultReportConfig()
	cfg.Opts = core.TestOptions()
	cfg.Benchmarks = []string{"fft"}
	cfg.QualityLevels = []float64{0.05, 0.10}
	// Test-scale sample counts cannot certify the paper's 90%@95%
	// guarantee; mirror cmdReport's -scale test adjustment.
	cfg.SuccessRate = 0.6
	cfg.Confidence = 0.9
	cfg.TwoSided = false

	var buf bytes.Buffer
	if err := mithra.Report(cfg, &buf, "table1", "fig6"); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	path := filepath.Join("testdata", "report.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run 'go test -update' to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("report output differs from %s (run 'go test -update' after verifying):\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}
