// Command mithra-report regenerates every table and figure of the
// paper's evaluation in one run (the DESIGN.md §4 experiment index) and
// writes them to stdout or a file.
//
//	mithra-report                 # medium scale, all experiments
//	mithra-report -scale test     # quick smoke run
//	mithra-report -o report.txt   # write to a file
//
// Progress and errors print to stderr through the shared obs.Logger:
// -quiet silences progress, -v adds detail, -log-json switches to JSON
// lines. Exit codes: 0 success, 1 runtime failure, 2 usage.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"mithra"
	"mithra/internal/core"
	"mithra/internal/experiments"
	"mithra/internal/obs"
)

func main() {
	scale := flag.String("scale", "medium", "dataset scale: test|medium|paper")
	out := flag.String("o", "", "output file (default stdout)")
	seed := flag.Uint64("seed", 42, "experiment seed")
	format := flag.String("format", "text", "output format: text|csv|json")
	quiet := flag.Bool("quiet", false, "suppress progress output (errors still print)")
	verbose := flag.Bool("v", false, "verbose progress output")
	logJSON := flag.Bool("log-json", false, "emit progress and errors as JSON lines")
	flag.Parse()

	level := obs.LevelNormal
	switch {
	case *quiet:
		level = obs.LevelQuiet
	case *verbose:
		level = obs.LevelVerbose
	}
	lg := obs.NewLogger(os.Stderr, "mithra-report", level, *logJSON)

	var opts core.Options
	switch *scale {
	case "test":
		opts = core.TestOptions()
	case "medium":
		opts = core.DefaultOptions()
	case "paper":
		opts = core.PaperOptions()
	default:
		lg.Errorf("usage", "unknown scale %q", *scale)
		os.Exit(2)
	}
	opts.Seed = *seed
	opts.Obs, _ = obs.New(obs.Options{Log: lg})

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			lg.Errorf("io", "%v", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	cfg := mithra.DefaultReportConfig()
	cfg.Opts = opts
	if *scale == "test" {
		// Small samples cannot certify the paper guarantee; scale it down
		// with the dataset count as experiments.TestConfig does.
		cfg.SuccessRate = 0.6
		cfg.Confidence = 0.9
		cfg.TwoSided = false
	}

	start := time.Now()
	if *format == "text" {
		fmt.Fprintf(w, "MITHRA evaluation report (scale=%s, seed=%d)\n", *scale, *seed)
		fmt.Fprintf(w, "benchmarks: %v\n", cfg.Benchmarks)
		fmt.Fprintf(w, "guarantee: %.0f%% success, %.0f%% confidence; quality levels %v\n\n",
			cfg.SuccessRate*100, cfg.Confidence*100, cfg.QualityLevels)
	}
	s, err := experiments.NewSuite(cfg)
	if err != nil {
		lg.Errorf("config", "%v", err)
		os.Exit(1)
	}
	if err := experiments.RunAllFormat(s, w, experiments.Format(*format)); err != nil {
		lg.Errorf("run", "%v", err)
		os.Exit(1)
	}
	if *format == "text" {
		fmt.Fprintf(w, "total time: %s\n", time.Since(start).Round(time.Second))
	}
}
