// Command mithra-calib prints per-benchmark deployment diagnostics: the
// tuned threshold, the auto-tuner's chosen table configuration and guard
// band, the neural classifier's selected topology and bias, and each
// design's validation behaviour. It is the tool used to calibrate the
// pipeline defaults (README "Results" and EXPERIMENTS.md record its
// output at the released settings).
//
//	mithra-calib [-scale test|medium|paper] [-quality 0.05] [bench ...]
//
// Progress and errors print to stderr through the shared obs.Logger
// (-quiet, -v, -log-json). Exit codes: 0 success, 1 runtime failure,
// 2 usage.
package main

import (
	"flag"
	"fmt"
	"os"

	"mithra/internal/axbench"
	"mithra/internal/core"
	"mithra/internal/obs"
	"mithra/internal/stats"
)

func main() {
	scale := flag.String("scale", "medium", "dataset scale: test|medium|paper")
	quality := flag.Float64("quality", 0.05, "desired quality loss")
	quiet := flag.Bool("quiet", false, "suppress progress output (errors still print)")
	verbose := flag.Bool("v", false, "verbose progress output")
	logJSON := flag.Bool("log-json", false, "emit progress and errors as JSON lines")
	flag.Parse()

	level := obs.LevelNormal
	switch {
	case *quiet:
		level = obs.LevelQuiet
	case *verbose:
		level = obs.LevelVerbose
	}
	lg := obs.NewLogger(os.Stderr, "mithra-calib", level, *logJSON)

	var opts core.Options
	switch *scale {
	case "test":
		opts = core.TestOptions()
	case "medium":
		opts = core.DefaultOptions()
	case "paper":
		opts = core.PaperOptions()
	default:
		lg.Errorf("usage", "unknown scale %q", *scale)
		os.Exit(2)
	}
	opts.Obs, _ = obs.New(obs.Options{Log: lg})
	g := stats.Guarantee{QualityLoss: *quality, SuccessRate: 0.9, Confidence: 0.95, TwoSided: true}
	if *scale == "test" {
		g.SuccessRate, g.Confidence, g.TwoSided = 0.6, 0.9, false
	}

	benches := flag.Args()
	if len(benches) == 0 {
		benches = axbench.Names()
	}
	for _, name := range benches {
		b, err := axbench.New(name)
		if err != nil {
			lg.Errorf("config", "%v", err)
			os.Exit(1)
		}
		lg.Infof("calibrating %s at quality %.3f (scale=%s)", name, *quality, *scale)
		ctx, err := core.NewContext(b, opts)
		if err != nil {
			lg.Errorf("run", "%v", err)
			os.Exit(1)
		}
		d, err := ctx.Deploy(g)
		if err != nil {
			lg.Errorf("run", "%v", err)
			os.Exit(1)
		}
		tc := d.Table.Config()
		fmt.Printf("%s: full-approx %.1f%%, threshold %.4f (certified=%v)\n",
			name, ctx.FullQuality*100, d.Th.Threshold, d.Th.Certified)
		fmt.Printf("  table : bits=%d combine=%s guard=%.2f density=%.1f%% size=%dB\n",
			tc.QuantBits, tc.Combine, d.TableGuard, d.Table.Density()*100, d.Table.SizeBytes())
		fmt.Printf("  neural: topo=%v bias=%.2f size=%dB\n",
			d.Neural.Topology(), d.Neural.Bias(), d.Neural.SizeBytes())
		for _, design := range []core.Design{core.DesignOracle, core.DesignTable, core.DesignNeural} {
			r := d.EvaluateValidation(design)
			fmt.Printf("  %-7s inv=%5.1f%% speedup=%.2fx energy=%.2fx FP=%.1f%% FN=%.1f%% succ=%d/%d\n",
				design, r.InvocationRate*100, r.Speedup, r.EnergyReduction,
				r.FPRate*100, r.FNRate*100, r.Successes, len(r.Qualities))
		}
	}
}
