package main

import (
	"bytes"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"mithra/internal/axbench"
	"mithra/internal/core"
	"mithra/internal/serve"
	"mithra/internal/stats"
)

// compiledBlob builds one exported deployment (test scale) shared by
// every test in the package — compilation dominates the test's cost.
var compiledBlob = sync.OnceValues(func() ([]byte, error) {
	b, err := axbench.New("fft")
	if err != nil {
		return nil, err
	}
	ctx, err := core.NewContext(b, core.TestOptions())
	if err != nil {
		return nil, err
	}
	dep, err := ctx.Deploy(stats.Guarantee{QualityLoss: 0.05, SuccessRate: 0.6, Confidence: 0.9})
	if err != nil {
		return nil, err
	}
	return dep.Export()
})

func snapshotFile(t *testing.T) string {
	t.Helper()
	blob, err := compiledBlob()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "prog.bin")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// syncBuffer makes the output buffers safe to inspect while run() is
// still writing from its own goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"no snapshot", []string{"-listen", "127.0.0.1:0"}, 2},
		{"no listener", []string{"-snapshot", "x.bin"}, 2},
		{"unknown flag", []string{"-bogus"}, 2},
		{"help", []string{"-h"}, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out, errw syncBuffer
			stop := make(chan os.Signal, 1)
			if code := run(c.args, &out, &errw, stop); code != c.want {
				t.Errorf("exit = %d, want %d (stderr: %s)", code, c.want, errw.String())
			}
		})
	}
	var out, errw syncBuffer
	if code := run([]string{"-snapshot", "definitely-missing.bin", "-listen", "127.0.0.1:0"},
		&out, &errw, make(chan os.Signal, 1)); code != 1 {
		t.Errorf("missing snapshot file: exit %d, want 1", code)
	}
}

// TestServeAndDrain boots mithrad on a Unix socket, serves a decision
// over the wire, then delivers SIGTERM and checks the daemon drains
// cleanly: exit 0, socket removed, journal written.
func TestServeAndDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a full deployment")
	}
	prog := snapshotFile(t)
	dir := t.TempDir()
	sock := filepath.Join(dir, "mithrad.sock")
	journal := filepath.Join(dir, "run.jsonl")

	var out, errw syncBuffer
	stop := make(chan os.Signal, 1)
	exited := make(chan int, 1)
	go func() {
		exited <- run([]string{
			"-snapshot", prog, "-unix", sock,
			"-sample-rate", "0.25", "-sample-seed", "17", "-freeze",
			"-journal", journal, "-drain-timeout", "5s",
		}, &out, &errw, stop)
	}()

	// Wait for the socket to accept.
	var cl *serve.Client
	var err error
	for i := 0; i < 1000; i++ {
		if cl, err = serve.Dial("unix", sock); err == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("daemon never came up: %v (stderr: %s)", err, errw.String())
	}
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	blob, _ := compiledBlob()
	snap, err := serve.LoadSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]float64, snap.Table.InputDim())
	for i := range in {
		in[i] = 0.25 * float64(i+1)
	}
	resp, err := cl.Decide(snap.Bench, 42, in)
	if err != nil {
		t.Fatal(err)
	}
	if want := snap.Table.ConcurrentView().Classify(in); resp.Precise != want {
		t.Fatalf("served decision %v, offline classifier %v", resp.Precise, want)
	}
	cl.Close()

	stop <- syscall.SIGTERM
	select {
	case code := <-exited:
		if code != 0 {
			t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errw.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
	if !strings.Contains(out.String(), "listening on unix") {
		t.Errorf("stdout missing listener line:\n%s", out.String())
	}
	if _, err := os.Stat(sock); !os.IsNotExist(err) {
		t.Errorf("socket not removed on drain: %v", err)
	}
	if raw, err := os.ReadFile(journal); err != nil || !strings.Contains(string(raw), `"mithrad"`) {
		t.Errorf("run journal missing or empty: %v", err)
	}
}

// TestMithradHelperProcess is not a test: it is the daemon body for the
// kill/restart test below, entered only when the test binary re-execs
// itself with MITHRAD_HELPER=1. Everything after "--" is mithrad's argv.
func TestMithradHelperProcess(t *testing.T) {
	if os.Getenv("MITHRAD_HELPER") != "1" {
		t.Skip("daemon body for TestKillRestartRecoversWALVersion")
	}
	var args []string
	for i, a := range os.Args {
		if a == "--" {
			args = os.Args[i+1:]
			break
		}
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGTERM, syscall.SIGINT)
	os.Exit(run(args, os.Stdout, os.Stderr, stop))
}

// TestKillRestartRecoversWALVersion is the crash-safety acceptance test
// at the process level: a mithrad serving a WAL-recovered snapshot is
// SIGKILLed mid-run — no drain, no cleanup — and a restart on the same
// state directory must come back serving the exact pre-crash snapshot
// version with identical decisions.
func TestKillRestartRecoversWALVersion(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a full deployment and re-execs the test binary")
	}
	prog := snapshotFile(t)
	blob, err := compiledBlob()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := serve.LoadSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	sock := filepath.Join(dir, "mithrad.sock")

	// Seed the WAL with a version-3 record so recovery is distinguishable
	// from simply re-loading the snapshot file (which serves version 1).
	w, err := serve.OpenWAL(walDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.StoreSnapshot(snap.Bench, 3, blob); err != nil {
		t.Fatal(err)
	}
	w.Close()

	boot := func() (*exec.Cmd, *syncBuffer) {
		t.Helper()
		self, err := os.Executable()
		if err != nil {
			t.Fatal(err)
		}
		var logs syncBuffer // stdout+stderr interleaved; syncBuffer serializes writers
		cmd := exec.Command(self, "-test.run=TestMithradHelperProcess", "--",
			"-snapshot", prog, "-unix", sock, "-wal-dir", walDir, "-freeze")
		cmd.Env = append(os.Environ(), "MITHRAD_HELPER=1")
		cmd.Stdout = &logs
		cmd.Stderr = &logs
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		return cmd, &logs
	}
	dialUp := func(errw *syncBuffer) *serve.Client {
		t.Helper()
		var cl *serve.Client
		var err error
		for i := 0; i < 1000; i++ {
			if cl, err = serve.Dial("unix", sock); err == nil {
				return cl
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("daemon never came up: %v (stderr: %s)", err, errw.String())
		return nil
	}
	in := make([]float64, snap.Table.InputDim())
	for i := range in {
		in[i] = 0.25 * float64(i+1)
	}

	cmd1, errw1 := boot()
	cl := dialUp(errw1)
	resp, err := cl.Decide(snap.Bench, 1, in)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Version != 3 {
		t.Fatalf("pre-kill daemon serves version %d, want the WAL-recovered 3 (stderr: %s)",
			resp.Version, errw1.String())
	}
	preKill := resp.Precise
	cl.Close()

	// Hard kill: SIGKILL cannot be caught, so nothing drains and the
	// socket file is left stale — exactly a crash.
	if err := cmd1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd1.Wait() //nolint:errcheck // exit status is "signal: killed" by design

	cmd2, errw2 := boot()
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM) //nolint:errcheck
		cmd2.Wait()                          //nolint:errcheck
	}()
	cl2 := dialUp(errw2)
	defer cl2.Close()
	resp2, err := cl2.Decide(snap.Bench, 2, in)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Version != 3 {
		t.Fatalf("restarted daemon serves version %d, want the pre-crash 3 (stderr: %s)",
			resp2.Version, errw2.String())
	}
	if resp2.Precise != preKill {
		t.Fatalf("restarted decision %v differs from pre-crash %v", resp2.Precise, preKill)
	}
	if !strings.Contains(errw2.String(), "wal: recovered bench="+snap.Bench+" at version 3") {
		t.Errorf("restart log missing WAL recovery line:\n%s", errw2.String())
	}

	// Graceful shutdown of the restarted daemon still works on the
	// recovered state (SIGTERM → drain → exit 0).
	cmd2.Process.Signal(syscall.SIGTERM) //nolint:errcheck
	done := make(chan error, 1)
	go func() { done <- cmd2.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("restarted daemon did not drain cleanly: %v\nstderr: %s", err, errw2.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("restarted daemon did not exit after SIGTERM")
	}
}
