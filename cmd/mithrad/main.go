// Command mithrad is the online decision server: it loads compiled
// deployment snapshots (from `mithra compile -o`) and answers
// accept/reject decisions over the length-prefixed binary protocol on
// TCP and/or Unix sockets, with an HTTP/JSON fallback on the obs debug
// mux (POST /decide, GET /snapshots next to /metrics and /debug/pprof/).
//
//	mithra compile -bench sobel -scale test -o sobel.bin
//	mithrad -snapshot sobel.bin -listen 127.0.0.1:7433 -debug-addr localhost:6060
//	mithra loadgen -addr 127.0.0.1:7433 -config sobel.bin -scale test
//
// The sporadic error-sampling path (-sample-rate) routes a deterministic
// fraction of invocations through the precise kernel, re-checks the
// Clopper-Pearson guarantee over each sampling window, and swaps
// repaired table snapshots in atomically; -freeze keeps sampling's
// measurements but pins the snapshots, which makes served decisions
// byte-identical to an offline replay (DESIGN.md §10).
//
// Shutdown (SIGINT/SIGTERM) drains gracefully: listeners close, queued
// requests are answered, then connections close — bounded by
// -drain-timeout, shared with the debug endpoint's HTTP drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"mithra/internal/cluster"
	"mithra/internal/fault"
	"mithra/internal/obs"
	"mithra/internal/serve"
	"mithra/internal/watch"
)

func main() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, stop))
}

// run is the testable entry point: it serves until stop delivers (or
// both listeners fail) and returns the process exit code.
func run(args []string, stdout, stderr io.Writer, stop <-chan os.Signal) int {
	fs := flag.NewFlagSet("mithrad", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	fs.Usage = func() {}
	var (
		snapshots    = fs.String("snapshot", "", "comma-separated compiled deployment files (from 'mithra compile -o'); required")
		listen       = fs.String("listen", "", "TCP listen address (e.g. 127.0.0.1:7433)")
		unixPath     = fs.String("unix", "", "Unix socket path")
		debugAddr    = fs.String("debug-addr", "", "debug/JSON endpoint address (metrics, pprof, POST /decide)")
		workers      = fs.Int("workers", 0, "decision workers per benchmark shard (0 = all cores)")
		queueDepth   = fs.Int("queue-depth", 256, "bounded request queue depth per shard")
		maxBatch     = fs.Int("max-batch", 32, "max requests one worker drains per wakeup")
		sampleRate   = fs.Float64("sample-rate", 0, "sporadic error-sampling rate (0 disables online updates)")
		sampleSeed   = fs.Uint64("sample-seed", 42, "deterministic sampler seed")
		updateEvery  = fs.Int("update-every", 64, "sampled observations per guarantee re-check window")
		freeze       = fs.Bool("freeze", false, "measure but never swap snapshots (replay mode)")
		drainTimeout = fs.Duration("drain-timeout", 10*time.Second, "graceful shutdown bound")
		journal      = fs.String("journal", "", "write a run journal (with the serving metrics snapshot) to this file")
		quiet        = fs.Bool("quiet", false, "suppress progress output")
		logJSON      = fs.Bool("log-json", false, "emit progress and errors as JSON lines")
		walDir       = fs.String("wal-dir", "", "crash-safe state directory: snapshots and sampling windows persist here and are recovered on restart")
		faultPlan    = fs.String("fault-plan", "", "deterministic fault-injection plan, e.g. 'seed=42,conn.reset=0.01,worker.panic=0.05@64' (chaos testing)")
		rejectFull   = fs.Bool("reject-when-full", false, "shed load in-band (CodeQueueFull) instead of exerting backpressure when a shard queue saturates")
		noBreaker    = fs.Bool("no-breaker", false, "disable the per-benchmark circuit breaker (fail-safe degradation)")
		watchOn      = fs.Bool("watch", false, "arm the per-shard guarantee monitor (requires -sample-rate > 0 to see observations)")
		watchWindow  = fs.Int("watch-window", 0, "guarantee monitor sliding window in sampled observations (0 = default 64)")
		watchMargin  = fs.Float64("watch-margin", 0, "at-risk margin between the CP lower bound and the target (0 = default 0.02)")
		watchRecover = fs.Int("watch-recover", 0, "consecutive passing evaluations before recovering -> holding (0 = window size)")
		watchExempl  = fs.Int("watch-exemplars", 0, "guarantee-relevant request IDs kept per state transition (0 = default 8)")
		watchLag     = fs.Int("watch-lag", 0, "reorder-buffer depth for ID-ordered monitor ingestion (0 = default 512)")
		recheckWin   = fs.Int("recheck-window", 0, "continuous monitoring: re-check the guarantee over sliding windows of N sampled observations and escalate at-risk/violated into a sampling boost + table fold-in (implies -watch; requires -sample-rate > 0)")
		maxFoldIns   = fs.Int("max-foldins-to-recover", 0, "fold-ins allowed per recovery episode before the monitor journals recovery_exceeded and stops repairing (0 = default 8; needs -recheck-window)")
		clusterSpec  = fs.String("cluster-spec", "", "cluster spec file shared by every node (enables multi-node mode; requires -node and -wal-dir)")
		nodeName     = fs.String("node", "", "this node's name in the -cluster-spec file")
	)
	err := fs.Parse(args)
	if errors.Is(err, flag.ErrHelp) {
		fmt.Fprintln(stderr, "usage: mithrad -snapshot <file>[,<file>...] [-listen addr] [-unix path] [flags]\nflags:")
		fs.SetOutput(stderr)
		fs.PrintDefaults()
		return 0
	}
	level := obs.LevelNormal
	if *quiet {
		level = obs.LevelQuiet
	}
	lg := obs.NewLogger(stderr, "mithrad", level, *logJSON)
	if err != nil {
		lg.Errorf("usage", "%v", err)
		return 2
	}
	if *snapshots == "" {
		lg.Errorf("usage", "-snapshot is required")
		return 2
	}
	// Cluster mode: the shared spec file fixes this node's listen address
	// and the cluster-wide sampling config. Sampling flags must agree on
	// every node or placement and sampling would disagree, so the spec
	// overrides them; the WAL is mandatory because replica catch-up and
	// the decision log live there.
	var cspec *cluster.Spec
	if *clusterSpec != "" {
		if *nodeName == "" {
			lg.Errorf("usage", "-cluster-spec requires -node")
			return 2
		}
		if *walDir == "" {
			lg.Errorf("usage", "cluster mode requires -wal-dir (fold log, decision log, catch-up state)")
			return 2
		}
		var err error
		cspec, err = cluster.ParseSpecFile(*clusterSpec)
		if err != nil {
			lg.Errorf("usage", "%v", err)
			return 2
		}
		if _, err := cspec.Node(*nodeName); err != nil {
			lg.Errorf("usage", "%v", err)
			return 2
		}
		*sampleRate = cspec.SampleRate
		*sampleSeed = cspec.SampleSeed
	}
	if *listen == "" && *unixPath == "" && cspec == nil {
		lg.Errorf("usage", "need at least one of -listen / -unix (or -cluster-spec)")
		return 2
	}
	if *maxFoldIns > 0 && *recheckWin <= 0 {
		lg.Errorf("usage", "-max-foldins-to-recover needs -recheck-window")
		return 2
	}

	o, err := obs.New(obs.Options{Metrics: true, JournalPath: *journal, Log: lg})
	if err != nil {
		lg.Errorf("io", "%v", err)
		return 1
	}

	var faults *fault.Set
	if *faultPlan != "" {
		plan, err := fault.ParsePlan(*faultPlan)
		if err != nil {
			lg.Errorf("usage", "%v", err)
			return 2
		}
		faults = fault.NewSet(plan)
		lg.Infof("fault injection active: %s", plan.String())
		o.Note("fault_plan", map[string]any{"plan": plan.String()})
	}

	// Crash-safe state: open the WAL and recover the pre-crash snapshots
	// and sampling windows before anything is installed, and attach the
	// write-ahead persist hook before the boot installs so every snapshot
	// the registry ever publishes is durable first.
	var (
		wal       *serve.WAL
		recovered *serve.Recovered
	)
	reg := serve.NewRegistry()
	if *walDir != "" {
		wal, err = serve.OpenWAL(*walDir)
		if err != nil {
			lg.Errorf("io", "%v", err)
			return 1
		}
		recovered, err = wal.Recover()
		if err != nil {
			lg.Errorf("io", "%v", err)
			return 1
		}
		for _, skip := range recovered.Skipped {
			lg.Errorf("run", "wal: skipped %s", skip)
			o.Note("wal_skipped", map[string]any{"record": skip})
		}
		serve.AttachWAL(reg, wal, faults, o)
	}

	for _, path := range strings.Split(*snapshots, ",") {
		blob, err := os.ReadFile(path)
		if err != nil {
			lg.Errorf("io", "%v", err)
			return 1
		}
		snap, err := serve.LoadSnapshot(blob)
		if err != nil {
			lg.Errorf("run", "load %s: %v", path, err)
			return 1
		}
		// A WAL record for this benchmark supersedes the shipped file: it
		// is the exact pre-crash serving state, online updates included.
		if recovered != nil {
			if rec, ok := recovered.Snapshots[snap.Bench]; ok {
				rsnap, rerr := serve.LoadSnapshot(rec.Blob)
				if rerr != nil {
					lg.Errorf("run", "wal: recover %s v%d: %v", rec.Bench, rec.Version, rerr)
					o.Note("wal_skipped", map[string]any{"record": fmt.Sprintf("%s v%d: %v", rec.Bench, rec.Version, rerr)})
				} else {
					rsnap.Version = rec.Version
					snap = rsnap
					lg.Infof("wal: recovered bench=%s at version %d", rec.Bench, rec.Version)
					o.Note("wal_recovered", map[string]any{"bench": rec.Bench, "version": rec.Version})
				}
			}
		}
		if _, err := reg.Install(snap); err != nil {
			lg.Errorf("run", "install %s: %v", path, err)
			return 1
		}
		lg.Infof("loaded %s: bench=%s threshold=%.6f dim=%d version=%d",
			path, snap.Bench, snap.Threshold, snap.Table.InputDim(), snap.Version)
	}

	// Cluster node: the recorder persists this node's half of the cluster
	// digest; the node wires routing, forwarding, and fold-in replication
	// into the server via the ClusterHooks interface.
	var (
		node     *cluster.Node
		recorder *cluster.Recorder
	)
	if cspec != nil {
		recorder, err = cluster.OpenRecorder(filepath.Join(*walDir, "decisions.dlog"))
		if err != nil {
			lg.Errorf("io", "%v", err)
			return 1
		}
		node, err = cluster.NewNode(cluster.NodeConfig{
			Spec:     cspec,
			Self:     *nodeName,
			Registry: reg,
			WAL:      wal,
			Recorder: recorder,
			Faults:   faults,
			Obs:      o,
			Logf:     lg.Infof,
		})
		if err != nil {
			lg.Errorf("run", "%v", err)
			return 1
		}
		lg.Infof("cluster node %s (%d nodes, seed %d, vnodes %d)",
			*nodeName, len(cspec.Nodes), cspec.Seed, cspec.VNodes)
		o.Note("cluster_node", map[string]any{
			"node": *nodeName, "nodes": len(cspec.Nodes),
			"seed": cspec.Seed, "vnodes": cspec.VNodes,
			"sample_rate": cspec.SampleRate, "sample_seed": cspec.SampleSeed,
		})
	}

	cfg := serve.Config{
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		MaxBatch:       *maxBatch,
		SampleRate:     *sampleRate,
		SampleSeed:     *sampleSeed,
		UpdateEvery:    *updateEvery,
		Freeze:         *freeze,
		Obs:            o,
		Faults:         faults,
		RejectWhenFull: *rejectFull,
		Breaker:        serve.BreakerConfig{Disabled: *noBreaker},
		WAL:            wal,
		Watch: watch.Config{
			Enabled:      *watchOn || *recheckWin > 0,
			Window:       *watchWindow,
			RiskMargin:   *watchMargin,
			RecoverAfter: *watchRecover,
			Exemplars:    *watchExempl,
			Lag:          *watchLag,
			Recheck: watch.Recheck{
				Enabled:     *recheckWin > 0,
				RepairEvery: *recheckWin,
				MaxFoldIns:  *maxFoldIns,
			},
		},
	}
	if *recheckWin > 0 && *watchWindow == 0 {
		// The recheck window is the sliding window the CP check runs over;
		// without an explicit -watch-window the two coincide.
		cfg.Watch.Window = *recheckWin
	}
	if recovered != nil {
		cfg.RecoveredWindows = recovered.Windows
	}
	if node != nil {
		cfg.Cluster = node
		cfg.OnFoldIn = node.OnFoldIn
	}
	srv, err := serve.NewServer(reg, cfg)
	if err != nil {
		lg.Errorf("run", "%v", err)
		return 1
	}
	runCfg := map[string]any{
		"snapshots": *snapshots, "sample_rate": *sampleRate,
		"update_every": *updateEvery, "freeze": *freeze,
		"wal": *walDir != "", "fault_plan": *faultPlan, "watch": cfg.Watch.Enabled,
		"recheck_window": *recheckWin, "max_foldins": cfg.Watch.Recheck.MaxFoldIns,
	}
	if cspec != nil {
		runCfg["cluster_node"] = *nodeName
		runCfg["cluster_nodes"] = len(cspec.Nodes)
	}
	o.RunStart("mithrad", *sampleSeed, runCfg, nil)

	var dbg *obs.DebugServer
	if *debugAddr != "" {
		handlers := srv.HTTPHandlers()
		// Prometheus text exposition rides the same mux (`mithra watch`
		// polls it); the rendering lives in watch because obs cannot
		// import it.
		handlers["/metrics.prom"] = watch.PromHandler(o.Metrics())
		dbg, err = obs.StartDebugMux(*debugAddr, o.Metrics(), handlers)
		if err != nil {
			lg.Errorf("io", "%v", err)
			return 1
		}
		lg.Infof("debug/JSON endpoint: http://%s/ (POST /decide, GET /snapshots, /metrics, /metrics.prom)", dbg.Addr())
	}

	// serveErrs carries listener failures; a failed listener counts like a
	// stop request once every listener is down.
	serveErrs := make(chan error, 2)
	listeners := 0
	startListener := func(network, addr string) error {
		ln, err := net.Listen(network, addr)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "listening on %s %s\n", network, ln.Addr())
		lg.Infof("serving %s on %s %s", strings.Join(reg.Benches(), ","), network, ln.Addr())
		listeners++
		go func() { serveErrs <- srv.Serve(ln) }()
		return nil
	}
	if *listen != "" {
		if err := startListener("tcp", *listen); err != nil {
			lg.Errorf("io", "%v", err)
			return 1
		}
	}
	if *unixPath != "" {
		os.Remove(*unixPath) //nolint:errcheck // stale socket from a previous run
		if err := startListener("unix", *unixPath); err != nil {
			lg.Errorf("io", "%v", err)
			return 1
		}
	}
	clusterUnix := ""
	if cspec != nil {
		// Peers and routed clients dial the spec address, so the node must
		// listen there (on top of any extra -listen/-unix endpoints).
		addr := cspec.Addr(*nodeName)
		nw := "tcp"
		if strings.ContainsRune(addr, '/') {
			nw = "unix"
		}
		if addr != *listen && addr != *unixPath {
			if nw == "unix" {
				os.Remove(addr) //nolint:errcheck // stale socket from a previous run
				clusterUnix = addr
			}
			if err := startListener(nw, addr); err != nil {
				lg.Errorf("io", "%v", err)
				return 1
			}
		}
		// Boot catch-up: pull the fold-in history this node missed while it
		// was down, so replicas converge before peers need them.
		go node.CatchUp(10, 500*time.Millisecond)
	}

	exit := 0
	running := true
	for running {
		select {
		case sig := <-stop:
			lg.Infof("received %v, draining (timeout %s)", sig, *drainTimeout)
			running = false
		case err := <-serveErrs:
			if err != nil {
				lg.Errorf("run", "%v", err)
				exit = 1
			}
			listeners--
			if listeners == 0 {
				running = false
			}
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		lg.Errorf("run", "drain incomplete: %v", err)
		exit = 1
	}
	if dbg != nil {
		if err := dbg.Shutdown(ctx); err != nil {
			lg.Errorf("run", "debug drain incomplete: %v", err)
		}
	}
	if *unixPath != "" {
		os.Remove(*unixPath) //nolint:errcheck // best-effort socket cleanup
	}
	if clusterUnix != "" {
		os.Remove(clusterUnix) //nolint:errcheck // best-effort socket cleanup
	}
	if node != nil {
		node.Close()
	}
	if recorder != nil {
		if err := recorder.Close(); err != nil {
			lg.Errorf("io", "%v", err)
			exit = 1
		}
	}
	if wal != nil {
		wal.Close() //nolint:errcheck // snapshot records are already durable
	}
	var closeErr error
	if exit != 0 {
		closeErr = fmt.Errorf("mithrad exited with failures")
	}
	if err := o.Close(closeErr); err != nil {
		lg.Errorf("io", "%v", err)
		exit = 1
	}
	lg.Infof("drained: %d snapshot swap(s), %d decision(s) served",
		reg.Swaps(), o.Counter("serve.decisions.precise").Value()+o.Counter("serve.decisions.approx").Value())
	return exit
}
