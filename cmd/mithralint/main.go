// Command mithralint runs the determinism & parallel-safety analyzer
// suite (internal/lint) over the module. It works in two modes:
//
// Standalone, from anywhere inside the module:
//
//	go run ./cmd/mithralint ./...
//	mithralint ./internal/experiments
//
// As a vet tool, which reuses the go build cache and export data:
//
//	go build -o bin/mithralint ./cmd/mithralint
//	go vet -vettool=$(pwd)/bin/mithralint ./...
//
// Exit status: 0 when the tree is clean, 2 when any diagnostic is
// reported, 1 on usage or load failure. Findings can be waived with an
// explained suppression on the flagged line or the line above:
//
//	//lint:ignore <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mithra/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// Second step of the vet protocol handshake: the go command asks
	// which flags the tool supports (JSON array on stdout). This suite
	// takes none.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return 0
	}

	fs := flag.NewFlagSet("mithralint", flag.ExitOnError)
	version := fs.String("V", "", "print version and exit (vet protocol handshake)")
	list := fs.Bool("help-analyzers", false, "describe the analyzers and exit")
	escapes := fs.Bool("escapes", false, "run the //mithra:hotpath escape gate (go build -gcflags=-m) instead of the analyzers")
	suppress := fs.Bool("suppressions", false, "list every //lint:ignore and //mithra:coldpath waiver and exit")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mithralint [packages]   (e.g. mithralint ./...)\n")
		fmt.Fprintf(os.Stderr, "package patterns are resolved relative to the module root\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}

	// `go vet -vettool` first interrogates the tool's identity with
	// -V=full; the reply must be one line of the form "name version ...".
	if *version != "" {
		fmt.Println("mithralint version v1.0.0")
		return 0
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%s: %s\n\n", a.Name, a.Doc)
		}
		return 0
	}

	rest := fs.Args()
	// Vet unit mode: the go command hands over one JSON config per
	// package.
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return lint.UnitCheck(os.Stderr, rest[0])
	}

	patterns := rest
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mithralint: %v\n", err)
		return 1
	}

	// Escape-gate mode: hold the annotated hotpath regions against the
	// compiler's own escape analysis.
	if *escapes {
		problems, err := lint.CheckEscapes(root, patterns)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mithralint: %v\n", err)
			return 1
		}
		for _, p := range problems {
			fmt.Println(p)
		}
		if len(problems) > 0 {
			return 2
		}
		return 0
	}

	pkgs, err := lint.Load(root, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mithralint: %v\n", err)
		return 1
	}
	// Audit mode: print every explained waiver (the CI job archives this
	// listing so reviews see the full suppression surface, not the diff).
	if *suppress {
		for _, s := range lint.Suppressions(pkgs) {
			fmt.Println(s)
		}
		return 0
	}

	failed := false
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			failed = true
			fmt.Fprintf(os.Stderr, "mithralint: %s: %v\n", p.Path, e)
		}
	}
	diags, err := lint.Run(pkgs, lint.Analyzers())
	if err != nil {
		fmt.Fprintf(os.Stderr, "mithralint: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Printf("%s: %s (%s)\n", d.Position, d.Message, d.Analyzer)
	}
	if failed {
		return 1
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// moduleRoot walks up from the working directory to the enclosing go.mod,
// so the tool runs correctly from any subdirectory of the module.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
