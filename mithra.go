// Package mithra is the public API of this reproduction of "Towards
// Statistical Guarantees in Controlling Quality Tradeoffs for Approximate
// Acceleration" (ISCA 2016).
//
// MITHRA is a hardware-software co-design that decides, per invocation of
// an approximately-accelerated function, whether to invoke the
// accelerator (an NPU) or fall back to the original precise code, while
// providing statistical guarantees — via the Clopper-Pearson exact method
// — that a desired final output quality loss will be met on unseen input
// datasets with high confidence.
//
// The typical flow mirrors the paper's compiler workflow:
//
//	b, _ := mithra.NewBenchmark("sobel")
//	ctx, _ := mithra.NewContext(b, mithra.DefaultOptions())
//	dep, _ := ctx.Deploy(mithra.PaperGuarantee())     // Algorithm 1 + classifier training
//	res := dep.EvaluateValidation(mithra.DesignTable) // unseen-data evaluation
//
// Context building trains the NPU and captures invocation traces; Deploy
// tunes the error threshold for the requested guarantee and pre-trains
// the table-based and neural hardware classifiers; Evaluate replays the
// unseen datasets under a chosen design and reports quality, certified
// success rate, and simulated speedup/energy gains.
//
// The full evaluation campaign (every table and figure of the paper) is
// exposed through Report and the cmd/mithra binaries.
package mithra

import (
	"io"

	"mithra/internal/axbench"
	"mithra/internal/classifier"
	"mithra/internal/core"
	"mithra/internal/dataset"
	"mithra/internal/experiments"
	"mithra/internal/stats"
)

// Re-exported types. These are aliases, so values flow freely between the
// public API and the internal packages.
type (
	// Benchmark is one AxBench application (kernel + application driver +
	// quality metric + timing profile).
	Benchmark = axbench.Benchmark
	// Scale sizes generated datasets (image dimensions, batch sizes, ...).
	Scale = axbench.Scale
	// Options configures the compilation pipeline.
	Options = core.Options
	// Context is a benchmark's compiled, guarantee-independent state:
	// trained NPU plus captured compile/validation traces.
	Context = core.Context
	// Deployment is a tuned threshold plus pre-trained classifiers for
	// one quality guarantee.
	Deployment = core.Deployment
	// Design selects the quality-control mechanism under evaluation.
	Design = core.Design
	// EvalResult aggregates quality, certification, and simulated gains.
	EvalResult = core.EvalResult
	// Guarantee is the statistical guarantee the programmer requests.
	Guarantee = stats.Guarantee
	// Classifier is the hardware decision mechanism interface.
	Classifier = classifier.Classifier
	// TableConfig sizes the table-based classifier.
	TableConfig = classifier.TableConfig
	// ReportConfig parameterizes a full evaluation campaign.
	ReportConfig = experiments.Config
	// Program is a loaded, runnable deployment (real execution with
	// per-invocation quality control; no traces required).
	Program = core.Program
	// RunStats reports one quality-controlled execution.
	RunStats = core.RunStats
	// Image is a grayscale image with [0,1] intensities (PGM-convertible).
	Image = dataset.Image
	// Input is one application input dataset.
	Input = axbench.Input
)

// The evaluated designs.
const (
	DesignNone     = core.DesignNone
	DesignOracle   = core.DesignOracle
	DesignTable    = core.DesignTable
	DesignNeural   = core.DesignNeural
	DesignRandom   = core.DesignRandom
	DesignTableSW  = core.DesignTableSW
	DesignNeuralSW = core.DesignNeuralSW
)

// Benchmarks returns the names of the six AxBench applications in Table I
// order.
func Benchmarks() []string { return axbench.Names() }

// NewBenchmark constructs a benchmark by name.
func NewBenchmark(name string) (Benchmark, error) { return axbench.New(name) }

// NewContext trains the NPU for b and captures all dataset traces.
func NewContext(b Benchmark, opts Options) (*Context, error) { return core.NewContext(b, opts) }

// DefaultOptions is the medium-scale pipeline configuration.
func DefaultOptions() Options { return core.DefaultOptions() }

// PaperOptions is the paper's full-scale configuration (250+250 datasets,
// 512x512 images, ...). Expect long runtimes.
func PaperOptions() Options { return core.PaperOptions() }

// TestOptions is a minimal configuration for smoke tests.
func TestOptions() Options { return core.TestOptions() }

// PaperGuarantee is the paper's headline operating point: 5% quality
// loss, 90% success rate, 95% confidence (two-sided interval convention).
func PaperGuarantee() Guarantee { return stats.PaperGuarantee() }

// Compile is the one-call convenience: build the context for the named
// benchmark and deploy it for the guarantee.
func Compile(benchName string, g Guarantee, opts Options) (*Deployment, error) {
	b, err := axbench.New(benchName)
	if err != nil {
		return nil, err
	}
	ctx, err := core.NewContext(b, opts)
	if err != nil {
		return nil, err
	}
	return ctx.Deploy(g)
}

// DefaultReportConfig is the medium-scale evaluation campaign matching
// the paper's sweep structure.
func DefaultReportConfig() ReportConfig { return experiments.DefaultConfig() }

// Report runs the configured experiments — all of them when ids is empty,
// otherwise the named subset — rendering each table to w.
func Report(cfg ReportConfig, w io.Writer, ids ...string) error {
	s, err := experiments.NewSuite(cfg)
	if err != nil {
		return err
	}
	if len(ids) == 0 {
		return experiments.RunAll(s, w)
	}
	for _, id := range ids {
		if err := experiments.RunOne(s, id, w); err != nil {
			return err
		}
	}
	return nil
}

// LoadProgram deserializes a Deployment.Export artifact into a runnable
// Program.
func LoadProgram(data []byte) (*Program, error) { return core.LoadProgram(data) }

// ReadPGM decodes a P5/P2 portable graymap into an Image.
func ReadPGM(r io.Reader) (*Image, error) { return dataset.ReadPGM(r) }

// NewImageInput wraps an image as a sobel dataset.
func NewImageInput(im *Image) Input { return axbench.NewImageInput(im) }

// NewJPEGInput wraps an image (cropped to 8-pixel multiples) as a jpeg
// dataset.
func NewJPEGInput(im *Image) (Input, error) { return axbench.NewJPEGInput(im) }

// ExperimentIDs lists the regenerable tables/figures (DESIGN.md §4).
func ExperimentIDs() []string {
	rs := experiments.Runners()
	ids := make([]string, len(rs))
	for i, r := range rs {
		ids[i] = r.ID
	}
	return ids
}
