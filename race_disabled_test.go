//go:build !race

package mithra

// raceEnabled reports whether the race detector is instrumenting this
// build.
const raceEnabled = false
